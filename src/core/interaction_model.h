// The interaction-model layer: pair selection as a first-class, swappable,
// checkpointable policy under the run-loop kernel.
//
// The paper's semantics (Sect. 2) is parameterized by *who interacts with
// whom*: the uniform random scheduler of Sect. 6 is one fair scheduler among
// many, and Theorem 7's restricted interaction graphs are another.  Before
// this layer each pairing discipline was a bespoke stepper (uniform pairs in
// simulator.cpp, weighted pairs, graph edges, deterministic Scheduler
// cursors) that duplicated both the selection logic and the delta-application
// bookkeeping.  Now a pairing discipline is an InteractionModel — a small
// value type that proposes one ordered agent pair per interaction — and one
// PairStepper template turns any model into a run_loop stepper, so every
// model inherits silence detection, budgets, observers, telemetry, and
// checkpoint/resume bit-identity from the kernel.
//
// RNG discipline is inherited from the kernel contract: propose_pair is the
// only place a model may draw from the kernel stream, once per interaction in
// loop order.  Models with internal state beyond the RNG (cursors,
// permutations, agent positions) serialize it as a flat word vector into the
// checkpoint's `interaction_model` section; stateless models write nothing,
// which keeps uniform/weighted/graph checkpoints byte-identical to the
// pre-layer format.

#ifndef POPPROTO_CORE_INTERACTION_MODEL_H
#define POPPROTO_CORE_INTERACTION_MODEL_H

#include <concepts>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/configuration.h"
#include "core/effective_pairs.h"
#include "core/feistel.h"
#include "core/require.h"
#include "core/rng.h"
#include "core/run_loop.h"
#include "core/tabulated_protocol.h"

namespace popproto {

/// Ordered agent pair to interact next.
using AgentPair = std::pair<std::size_t, std::size_t>;

/// How a model realizes the paper's fairness condition.
enum class Fairness {
    /// Fair with probability 1 (uniform, weighted, graph-edge sampling).
    kProbabilistic,
    /// Deterministically fair: every permitted ordered pair occurs within a
    /// bounded window of steps (round-robin, sweep, adversarial cover).
    kBoundedCover,
    /// Fairness is the caller's responsibility (user-supplied Scheduler).
    kExternal,
};

/// A pairing discipline.  `propose_pair` returns the next ordered pair of
/// distinct agent indices in [0, states.size()); it may read the current
/// per-agent states (adaptive/adversarial models) and is the only method
/// allowed to draw from the kernel RNG.
///
/// Traits:
///   * kFairness     — how the model satisfies the fairness condition;
///   * kCanSilence   — whether the model can reach every ordered pair of
///                     *present states*, making the multiset silence test
///                     sound (restricted edge sets must say false);
///   * kHasState     — whether the model carries state beyond the kernel
///                     RNG; iff true, checkpoints record `name()` plus the
///                     `save_state` words and resume calls `restore_state`.
template <typename M>
concept InteractionModel =
    requires(M model, const M cmodel, Rng& rng, const std::vector<State>& states,
             std::vector<std::uint64_t>& words) {
        { M::kFairness } -> std::convertible_to<Fairness>;
        { M::kCanSilence } -> std::convertible_to<bool>;
        { M::kHasState } -> std::convertible_to<bool>;
        { cmodel.name() } -> std::convertible_to<const char*>;
        { cmodel.checkpointable() } -> std::convertible_to<bool>;
        { model.propose_pair(rng, states) } -> std::same_as<AgentPair>;
        { cmodel.save_state(words) } -> std::same_as<void>;
        { model.restore_state(std::as_const(words)) } -> std::same_as<void>;
    };

/// The k-th ordered pair of distinct agents in lexicographic order, decoded
/// in O(1): row i lists its n-1 partners 0..n-1 with i itself skipped.
inline AgentPair decode_ordered_pair(std::uint64_t index, std::uint64_t num_agents) {
    const std::uint64_t i = index / (num_agents - 1);
    const std::uint64_t r = index % (num_agents - 1);
    return {static_cast<std::size_t>(i), static_cast<std::size_t>(r < i ? r : r + 1)};
}

// ---------------------------------------------------------------------------
// Built-in models

/// Uniform random pairing over all ordered pairs of distinct agents — the
/// paper's Sect. 6 scheduler, O(1) per interaction (the reference sampler).
class UniformPairModel {
public:
    static constexpr const char* kName = "uniform";
    static constexpr Fairness kFairness = Fairness::kProbabilistic;
    static constexpr bool kCanSilence = true;
    static constexpr bool kHasState = false;

    const char* name() const { return kName; }
    bool checkpointable() const { return true; }

    AgentPair propose_pair(Rng& rng, const std::vector<State>& states) {
        const std::uint64_t n = states.size();
        const std::uint64_t i = rng.below(n);
        std::uint64_t j = rng.below(n - 1);
        if (j >= i) ++j;
        return {static_cast<std::size_t>(i), static_cast<std::size_t>(j)};
    }

    void save_state(std::vector<std::uint64_t>&) const {}
    void restore_state(const std::vector<std::uint64_t>&) {}
};

/// Weighted pairing (Sect. 8): ordered pair (i, j), i != j, with probability
/// proportional to weights[i] * weights[j], via inverse-CDF draws.
class WeightedPairModel {
public:
    static constexpr const char* kName = "weighted";
    static constexpr Fairness kFairness = Fairness::kProbabilistic;
    static constexpr bool kCanSilence = true;
    static constexpr bool kHasState = false;

    /// Requires every weight positive and finite (validated by the entry
    /// point, re-checked here).
    explicit WeightedPairModel(const std::vector<double>& weights);

    const char* name() const { return kName; }
    bool checkpointable() const { return true; }

    AgentPair propose_pair(Rng& rng, const std::vector<State>& states) {
        (void)states;
        const std::size_t i = draw_agent(rng);
        // Rejection is cheap when weights are balanced, but when one weight
        // carries almost all the mass a collision loop could spin for an
        // unbounded number of draws; fall back to the exact exclusion draw.
        std::size_t j = draw_agent(rng);
        for (int attempt = 0; j == i; ++attempt) {
            if (attempt >= 16) {
                j = draw_agent_excluding(rng, i);
                break;
            }
            j = draw_agent(rng);
        }
        return {i, j};
    }

    void save_state(std::vector<std::uint64_t>&) const {}
    void restore_state(const std::vector<std::uint64_t>&) {}

private:
    std::size_t draw_agent(Rng& rng) const;
    std::size_t draw_agent_excluding(Rng& rng, std::size_t exclude) const;

    std::vector<double> weights_;
    std::vector<double> cumulative_;
    double total_weight_ = 0.0;
};

/// Uniform sampling over an explicit directed-edge list (Theorem 7
/// restricted interaction graphs: each edge is an (initiator, responder)
/// pair; InteractionGraph generators add both orientations).  Restricted
/// edge sets cannot reach every pair of present states, so the multiset
/// silence test is unsound: kCanSilence is false and runs stop on output
/// stability or budget.
class EdgeListPairModel {
public:
    static constexpr const char* kName = "graph";
    static constexpr Fairness kFairness = Fairness::kProbabilistic;
    static constexpr bool kCanSilence = false;
    static constexpr bool kHasState = false;

    /// Requires a non-empty list of ordered pairs of distinct endpoints,
    /// all < num_agents.
    EdgeListPairModel(std::vector<std::pair<std::uint32_t, std::uint32_t>> edges,
                      std::uint64_t num_agents);

    const char* name() const { return kName; }
    bool checkpointable() const { return true; }

    AgentPair propose_pair(Rng& rng, const std::vector<State>& states) {
        (void)states;
        const auto& edge = edges_[rng.below(edges_.size())];
        return {edge.first, edge.second};
    }

    void save_state(std::vector<std::uint64_t>&) const {}
    void restore_state(const std::vector<std::uint64_t>&) {}

private:
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
};

/// Deterministic cycle over all n(n-1) ordered pairs in lexicographic order.
/// Never draws from the kernel RNG; state is the one cursor word.
class RoundRobinPairModel {
public:
    static constexpr const char* kName = "round_robin";
    static constexpr Fairness kFairness = Fairness::kBoundedCover;
    static constexpr bool kCanSilence = true;
    static constexpr bool kHasState = true;

    explicit RoundRobinPairModel(std::uint64_t num_agents);

    const char* name() const { return kName; }
    bool checkpointable() const { return true; }
    std::uint64_t num_pairs() const { return num_pairs_; }

    /// Advances the cursor; no randomness consumed.
    AgentPair next_pair();

    AgentPair propose_pair(Rng&, const std::vector<State>&) { return next_pair(); }

    void save_state(std::vector<std::uint64_t>& words) const;
    void restore_state(const std::vector<std::uint64_t>& words);

private:
    std::uint64_t num_agents_ = 0;
    std::uint64_t num_pairs_ = 0;
    std::uint64_t cursor_ = 0;
};

/// Repeatedly replays one random permutation of all n(n-1) ordered pairs,
/// reshuffled after each full sweep (a "synchronous-ish" pattern common in
/// sensor deployments).  The shuffle uses the model's own seeded RNG, not
/// the kernel stream, matching the historical SweepScheduler draw order.
///
/// The permutation is *lazy*: a keyed Feistel permutation over the pair
/// indices (core/feistel.h) evaluated on demand, so the model's state is
/// O(1) — the RNG, the cursor, and 8 round keys — instead of the
/// materialized n(n-1)-word array the first implementation shuffled.  At
/// n = 2^16 that array alone was 34 GB; lazily, sweeps run at any
/// population the engines accept.  A reshuffle is a rekey (8 RNG draws).
class SweepPairModel {
public:
    static constexpr const char* kName = "sweep";
    static constexpr Fairness kFairness = Fairness::kBoundedCover;
    static constexpr bool kCanSilence = true;
    static constexpr bool kHasState = true;

    SweepPairModel(std::uint64_t num_agents, std::uint64_t seed);

    const char* name() const { return kName; }
    bool checkpointable() const { return true; }
    std::uint64_t num_pairs() const { return num_pairs_; }

    /// Advances the sweep; rekeys (from the model's own RNG) when a sweep
    /// completes.
    AgentPair next_pair();

    AgentPair propose_pair(Rng&, const std::vector<State>&) { return next_pair(); }

    void save_state(std::vector<std::uint64_t>& words) const;
    void restore_state(const std::vector<std::uint64_t>& words);

private:
    std::uint64_t num_agents_ = 0;
    std::uint64_t num_pairs_ = 0;
    std::uint64_t cursor_ = 0;
    Rng rng_;
    FeistelPermutation permutation_;
};

// ---------------------------------------------------------------------------
// The one stepper over all models

/// Turns any InteractionModel into a run_loop stepper: per-agent state array
/// plus multiset counts, one model-proposed ordered pair per step, delta
/// applied via the protocol's fast tables.  `kEngineTag` is the ObservedEngine
/// recorded in events and checkpoints (kAgentArray/kWeighted/kGraph for the
/// classic entry points — full checkpoint backward compatibility — and
/// kPairModel for scenario runs, where the checkpoint's interaction_model
/// section names the concrete model).
///
/// `kExactSilence` swaps the periodic multiset scan for exact silence: an
/// EffectivePairTracker maintains the count of effective ordered state
/// pairs incrementally (O(|Q|) per changed interaction), so the kernel
/// polls is_silent() every step and the run halts on the *first* silent
/// configuration instead of at the next √n-spaced probe.  Deterministic
/// bounded-cover models (round-robin, sweep) use this: their convergence
/// proofs count exact interactions, and a periodic probe would let a
/// cursor walk past the silent point, re-reporting silence up to a full
/// probe period late.  Checkpoint format is unchanged (the tracker is
/// rebuilt from the agent states on restore).
template <InteractionModel M, ObservedEngine kEngineTag, bool kExactSilence = false>
class PairStepper {
public:
    static constexpr ObservedEngine kEngine = kEngineTag;
    static constexpr SilenceMode kSilenceMode =
        kExactSilence ? SilenceMode::kExact
                      : (M::kCanSilence ? SilenceMode::kPeriodic : SilenceMode::kNever);
    static constexpr bool kGeometricSkips = false;
    static constexpr bool kSuperSteps = false;

    static_assert(!kExactSilence || M::kCanSilence,
                  "exact silence needs a model that can reach every pair of present states");

    /// `entry_point` names the caller in error messages ("simulate",
    /// "run_scenario", ...).
    PairStepper(const TabulatedProtocol& protocol, std::vector<State> states, M model,
                const char* entry_point)
        : protocol_(protocol),
          states_(std::move(states)),
          counts_(protocol.num_states(), 0),
          model_(std::move(model)),
          entry_point_(entry_point) {
        for (const State q : states_) ++counts_[q];
        if constexpr (kExactSilence) tracker_.emplace(protocol_, counts_);
    }

    std::uint64_t population() const { return states_.size(); }

    bool is_silent() const {
        if constexpr (kExactSilence) return tracker_->effective_pairs() == 0;
        return multiset_silent(protocol_, counts_);
    }

    std::uint64_t propose_skip(Rng&) { return 0; }

    StepOutcome step(Rng& rng) {
        const AgentPair pair = model_.propose_pair(rng, states_);
        if constexpr (M::kFairness == Fairness::kExternal) {
            // Built-in models construct valid pairs by design; only
            // externally supplied ones are validated on the hot path.
            const std::size_t n = states_.size();
            require(pair.first != pair.second && pair.first < n && pair.second < n,
                    std::string(entry_point_) + ": model produced an invalid pair");
        }

        const State p = states_[pair.first];
        const State q = states_[pair.second];
        const StatePair next = protocol_.apply_fast(p, q);
        StepOutcome outcome;
        if (next.initiator != p || next.responder != q) {
            outcome.changed = true;
            outcome.output_changed =
                protocol_.output_fast(next.initiator) != protocol_.output_fast(p) ||
                protocol_.output_fast(next.responder) != protocol_.output_fast(q);
            states_[pair.first] = next.initiator;
            states_[pair.second] = next.responder;
            --counts_[p];
            --counts_[q];
            ++counts_[next.initiator];
            ++counts_[next.responder];
            if constexpr (kExactSilence) {
                tracker_->adjust_count(p, -1);
                tracker_->adjust_count(q, -1);
                tracker_->adjust_count(next.initiator, +1);
                tracker_->adjust_count(next.responder, +1);
            }
        }
        return outcome;
    }

    CountConfiguration counts() const { return CountConfiguration::from_state_counts(counts_); }

    const std::vector<State>& states() const { return states_; }
    const M& model() const { return model_; }

    void save(RunCheckpoint& checkpoint) const {
        checkpoint.agent_states = states_;
        if constexpr (M::kHasState) {
            ensure(model_.checkpointable(),
                   std::string(entry_point_) + ": model rejects checkpointing");
            checkpoint.interaction_model = model_.name();
            model_.save_state(checkpoint.model_state);
        }
    }

    void restore(const RunCheckpoint& checkpoint) {
        require(checkpoint.agent_states.size() == states_.size(),
                std::string(entry_point_) + ": checkpoint agent count mismatch");
        states_ = checkpoint.agent_states;
        std::fill(counts_.begin(), counts_.end(), 0);
        for (const State q : states_) {
            require(q < counts_.size(),
                    std::string(entry_point_) + ": checkpoint state out of range");
            ++counts_[q];
        }
        if constexpr (kExactSilence) tracker_->reset_counts(counts_);
        if constexpr (M::kHasState) {
            require(checkpoint.interaction_model == model_.name(),
                    std::string(entry_point_) + ": checkpoint was taken under interaction "
                    "model '" + checkpoint.interaction_model + "', but this run uses '" +
                    model_.name() + "'");
            model_.restore_state(checkpoint.model_state);
        } else {
            require(checkpoint.interaction_model.empty() ||
                        checkpoint.interaction_model == model_.name(),
                    std::string(entry_point_) + ": checkpoint was taken under interaction "
                    "model '" + checkpoint.interaction_model + "', but this run uses '" +
                    model_.name() + "'");
        }
    }

private:
    const TabulatedProtocol& protocol_;
    std::vector<State> states_;
    std::vector<std::uint64_t> counts_;
    M model_;
    const char* entry_point_;
    // Engaged iff kExactSilence (optional keeps the periodic variants free
    // of the tracker's O(|Q|^2) tables).
    std::optional<EffectivePairTracker> tracker_;
};

}  // namespace popproto

#endif  // POPPROTO_CORE_INTERACTION_MODEL_H
