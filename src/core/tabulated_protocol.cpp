#include "core/tabulated_protocol.h"

#include <utility>

#include "core/require.h"

namespace popproto {

TabulatedProtocol::TabulatedProtocol(Tables tables)
    : tables_(std::move(tables)), num_states_(tables_.output.size()) {
    require(num_states_ > 0, "TabulatedProtocol: empty state set");
    require(!tables_.initial.empty(), "TabulatedProtocol: empty input alphabet");
    require(tables_.num_output_symbols > 0, "TabulatedProtocol: empty output alphabet");
    require(tables_.delta.size() == num_states_ * num_states_,
            "TabulatedProtocol: delta table must have |Q|^2 entries");
    for (State q0 : tables_.initial)
        require(q0 < num_states_, "TabulatedProtocol: initial state out of range");
    for (Symbol y : tables_.output)
        require(y < tables_.num_output_symbols, "TabulatedProtocol: output symbol out of range");
    for (const StatePair& result : tables_.delta) {
        require(result.initiator < num_states_ && result.responder < num_states_,
                "TabulatedProtocol: delta result out of range");
    }
    require(tables_.state_names.empty() || tables_.state_names.size() == num_states_,
            "TabulatedProtocol: wrong number of state names");
    require(tables_.input_names.empty() || tables_.input_names.size() == tables_.initial.size(),
            "TabulatedProtocol: wrong number of input names");
    require(tables_.output_names.empty() ||
                tables_.output_names.size() == tables_.num_output_symbols,
            "TabulatedProtocol: wrong number of output names");
}

std::unique_ptr<TabulatedProtocol> TabulatedProtocol::tabulate(const Protocol& protocol) {
    const auto num_states = protocol.num_states();
    Tables tables;
    tables.num_output_symbols = protocol.num_output_symbols();
    tables.initial.reserve(protocol.num_input_symbols());
    for (Symbol x = 0; x < protocol.num_input_symbols(); ++x) {
        tables.initial.push_back(protocol.initial_state(x));
        tables.input_names.push_back(protocol.input_name(x));
    }
    tables.output.reserve(num_states);
    for (State q = 0; q < num_states; ++q) {
        tables.output.push_back(protocol.output(q));
        tables.state_names.push_back(protocol.state_name(q));
    }
    for (Symbol y = 0; y < protocol.num_output_symbols(); ++y)
        tables.output_names.push_back(protocol.output_name(y));
    tables.delta.reserve(num_states * num_states);
    for (State p = 0; p < num_states; ++p)
        for (State q = 0; q < num_states; ++q) tables.delta.push_back(protocol.apply(p, q));
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

std::vector<EffectiveTransition> TabulatedProtocol::effective_transitions() const {
    std::vector<EffectiveTransition> transitions;
    for (State p = 0; p < num_states_; ++p) {
        for (State q = 0; q < num_states_; ++q) {
            const StatePair next = apply_fast(p, q);
            const bool multiset_preserved = (next.initiator == p && next.responder == q) ||
                                            (next.initiator == q && next.responder == p);
            if (!multiset_preserved) transitions.push_back({p, q, next});
        }
    }
    return transitions;
}

State TabulatedProtocol::initial_state(Symbol x) const {
    require(x < tables_.initial.size(), "TabulatedProtocol: input symbol out of range");
    return tables_.initial[x];
}

Symbol TabulatedProtocol::output(State q) const {
    require(q < num_states_, "TabulatedProtocol: state out of range");
    return tables_.output[q];
}

StatePair TabulatedProtocol::apply(State initiator, State responder) const {
    require(initiator < num_states_ && responder < num_states_,
            "TabulatedProtocol: state out of range");
    return apply_fast(initiator, responder);
}

std::string TabulatedProtocol::state_name(State q) const {
    if (q < tables_.state_names.size()) return tables_.state_names[q];
    return Protocol::state_name(q);
}

std::string TabulatedProtocol::input_name(Symbol x) const {
    if (x < tables_.input_names.size()) return tables_.input_names[x];
    return Protocol::input_name(x);
}

std::string TabulatedProtocol::output_name(Symbol y) const {
    if (y < tables_.output_names.size()) return tables_.output_names[y];
    return Protocol::output_name(y);
}

}  // namespace popproto
