// Small, fast pseudo-random number generator for interaction scheduling.
//
// Population-protocol experiments are dominated by the cost of drawing random
// agent pairs, so we use xoshiro256** (Blackman & Vigna) seeded via SplitMix64
// instead of the heavier std::mt19937_64.  The generator satisfies the
// UniformRandomBitGenerator concept so it also composes with <random>
// distributions where convenient.

#ifndef POPPROTO_CORE_RNG_H
#define POPPROTO_CORE_RNG_H

#include <array>
#include <cstdint>

namespace popproto {

/// xoshiro256** generator.  Deterministic for a given seed; not
/// cryptographically secure (nor does it need to be).
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the four words of state by iterating SplitMix64 from `seed`.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~result_type{0}; }

    /// Next 64 uniformly random bits.
    result_type operator()() noexcept;

    /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection
    /// method.  Precondition: bound > 0 (unchecked on this hot path; a zero
    /// bound would loop forever, so callers must not pass it).
    std::uint64_t below(std::uint64_t bound) noexcept;

    /// Uniform double in [0, 1).
    double uniform01() noexcept;

    /// Number of consecutive failures before the first success of an event
    /// with the given per-trial success probability (exact geometric
    /// sampling by inversion).  Returns 0 without consuming randomness when
    /// `success_probability >= 1`; results are capped at 10^18 so callers
    /// can add them to interaction counters without overflow.
    std::uint64_t geometric_skips(double success_probability) noexcept;

    /// Number of successes in `trials` independent Bernoulli(p) trials,
    /// sampled exactly by inverse-CDF: one uniform01 draw walked outward
    /// from the distribution's mode via the pmf recurrence, so the expected
    /// cost is O(sqrt(trials * p * (1 - p))).  Degenerate inputs (trials ==
    /// 0, p <= 0, p >= 1) return without consuming randomness.  Stateless
    /// apart from the stream position, so save_state/restore_state replay
    /// it exactly.
    std::uint64_t binomial(std::uint64_t trials, double p) noexcept;

    /// Number of successes when drawing `draws` items without replacement
    /// from a population of `successes` success items and `failures`
    /// failure items, sampled exactly by the same mode-centered inverse-CDF
    /// walk as `binomial` (one uniform01 draw).  Degenerate inputs
    /// (draws == 0, successes == 0, failures == 0, draws >= total) return
    /// without consuming randomness; draws > successes + failures is
    /// clamped to the whole population.
    std::uint64_t hypergeometric(std::uint64_t successes, std::uint64_t failures,
                                 std::uint64_t draws) noexcept;

    /// The four xoshiro256** state words, for suspend/resume of a run
    /// (core/run_loop.h checkpoints).  `save_state` followed by
    /// `restore_state` reproduces the output stream bit for bit.
    struct StreamState {
        std::array<std::uint64_t, 4> words{};
        friend bool operator==(const StreamState&, const StreamState&) = default;
    };

    /// Advances the stream by 2^128 draws in O(1) (the canonical xoshiro256**
    /// jump polynomial).  Two positions separated by a jump head disjoint
    /// subsequences of length 2^128 — the substrate for `split`.
    void jump() noexcept;

    /// Carves an independent child stream off this one: the child starts at
    /// the current position and this stream jumps 2^128 draws ahead, so the
    /// child owns [pos, pos + 2^128) and the parent continues beyond it.
    /// K successive splits hand out K pairwise-disjoint 2^128-draw blocks —
    /// deterministic in (parent state, split order), which is what makes the
    /// parallel collapsed engine reproducible for a fixed (seed, K)
    /// (collapsed_simulator.cpp).  Children support save_state /
    /// restore_state like any Rng, so checkpoints can carry shard streams.
    Rng split() noexcept;

    /// Captures the current stream position.
    StreamState save_state() const noexcept;

    /// Rewinds (or fast-forwards) the generator to a captured position.  An
    /// all-zero state (only producible by a corrupt checkpoint, never by
    /// `save_state`) is nudged to a valid one, as in the constructor.
    void restore_state(const StreamState& state) noexcept;

private:
    std::uint64_t state_[4];
};

}  // namespace popproto

#endif  // POPPROTO_CORE_RNG_H
