#include "core/observer.h"

#include <cmath>

#include "core/require.h"

namespace popproto {

SnapshotSchedule SnapshotSchedule::every(std::uint64_t period) {
    require(period >= 1, "SnapshotSchedule::every: period must be >= 1");
    SnapshotSchedule schedule;
    schedule.kind_ = Kind::kFixed;
    schedule.period_ = period;
    return schedule;
}

SnapshotSchedule SnapshotSchedule::log_spaced(double factor, std::uint64_t first) {
    require(factor > 1.0 && std::isfinite(factor),
            "SnapshotSchedule::log_spaced: factor must be finite and > 1");
    require(first >= 1, "SnapshotSchedule::log_spaced: first must be >= 1");
    SnapshotSchedule schedule;
    schedule.kind_ = Kind::kLog;
    schedule.factor_ = factor;
    schedule.first_ = first;
    return schedule;
}

std::uint64_t SnapshotSchedule::first_index() const {
    switch (kind_) {
        case Kind::kNone:
            return kNever;
        case Kind::kFixed:
            return period_;
        case Kind::kLog:
            return first_;
    }
    return kNever;
}

std::uint64_t SnapshotSchedule::next_after(std::uint64_t index) const {
    switch (kind_) {
        case Kind::kNone:
            return kNever;
        case Kind::kFixed: {
            if (index / period_ >= kNever / period_ - 1) return kNever;  // overflow guard
            return (index / period_ + 1) * period_;
        }
        case Kind::kLog: {
            // The scheduled set is first, g(first), g(g(first)), ... with
            // g(v) = max(v + 1, ceil(v * factor)); walking from `first_`
            // keeps the set independent of the query index, and the walk is
            // logarithmic in `index`.
            std::uint64_t v = first_;
            while (v <= index) {
                const double scaled = static_cast<double>(v) * factor_;
                // Cap well below 2^63 so the counter arithmetic in the
                // engines can never overflow.
                if (scaled >= 9.0e18) return kNever;
                const auto jumped = static_cast<std::uint64_t>(std::ceil(scaled));
                v = jumped > v ? jumped : v + 1;
            }
            return v;
        }
    }
    return kNever;
}

const char* observed_engine_name(ObservedEngine engine) {
    switch (engine) {
        case ObservedEngine::kAgentArray:
            return "agent_array";
        case ObservedEngine::kCountBatch:
            return "count_batch";
        case ObservedEngine::kCollapsed:
            return "collapsed";
        case ObservedEngine::kParallelCollapsed:
            return "parallel_collapsed";
        case ObservedEngine::kWeighted:
            return "weighted";
        case ObservedEngine::kGraph:
            return "graph";
        case ObservedEngine::kScheduler:
            return "scheduler";
        case ObservedEngine::kPairModel:
            return "pair_model";
        case ObservedEngine::kAdaptive:
            return "adaptive";
    }
    return "unknown";
}

bool observed_engine_from_name(const std::string& name, ObservedEngine& engine) {
    for (const ObservedEngine candidate :
         {ObservedEngine::kAgentArray, ObservedEngine::kCountBatch, ObservedEngine::kCollapsed,
          ObservedEngine::kParallelCollapsed, ObservedEngine::kWeighted, ObservedEngine::kGraph,
          ObservedEngine::kScheduler, ObservedEngine::kPairModel, ObservedEngine::kAdaptive}) {
        if (name == observed_engine_name(candidate)) {
            engine = candidate;
            return true;
        }
    }
    return false;
}

void RunObserver::on_start(const RunStartInfo&) {}
void RunObserver::on_snapshot(std::uint64_t, const CountConfiguration&) {}
void RunObserver::on_output_change(std::uint64_t) {}
void RunObserver::on_null_run(std::uint64_t) {}
void RunObserver::on_silence_check(std::uint64_t, bool) {}
void RunObserver::on_engine_switch(const EngineSwitchInfo&) {}
void RunObserver::on_stop(const RunResult&, double) {}

TeeObserver::TeeObserver(std::vector<RunObserver*> observers)
    : observers_(std::move(observers)) {
    for (const RunObserver* observer : observers_)
        require(observer != nullptr, "TeeObserver: null observer");
}

void TeeObserver::on_start(const RunStartInfo& info) {
    for (RunObserver* observer : observers_) observer->on_start(info);
}

void TeeObserver::on_snapshot(std::uint64_t interaction_index,
                              const CountConfiguration& configuration) {
    for (RunObserver* observer : observers_)
        observer->on_snapshot(interaction_index, configuration);
}

void TeeObserver::on_output_change(std::uint64_t interaction_index) {
    for (RunObserver* observer : observers_) observer->on_output_change(interaction_index);
}

void TeeObserver::on_null_run(std::uint64_t length) {
    for (RunObserver* observer : observers_) observer->on_null_run(length);
}

void TeeObserver::on_silence_check(std::uint64_t interaction_index, bool silent) {
    for (RunObserver* observer : observers_)
        observer->on_silence_check(interaction_index, silent);
}

void TeeObserver::on_engine_switch(const EngineSwitchInfo& info) {
    for (RunObserver* observer : observers_) observer->on_engine_switch(info);
}

void TeeObserver::on_stop(const RunResult& result, double wall_seconds) {
    for (RunObserver* observer : observers_) observer->on_stop(result, wall_seconds);
}

}  // namespace popproto
