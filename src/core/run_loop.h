// The run-loop kernel: one stepping policy for every simulation engine.
//
// The fairness model of the paper (Sect. 2, and the conjugating-automata
// randomized scheduler of Sect. 6) is *one* semantics with several samplers:
// uniform agent pairs (simulate), the count-based multiset sampler
// (simulate_counts), the collapsed super-step sampler (simulate_collapsed),
// weighted pairs (simulate_weighted), uniform edges on a restricted graph
// (simulate_on_graph), and deterministic schedulers
// (simulate_with_scheduler).  Everything those loops used to duplicate —
// the interaction budget, the periodic silence check and its max(4n, 1024)
// default, the stable-output window, observer dispatch, snapshot-boundary
// clamping of geometric null skips, the budget-vs-silence race at expiry —
// is policy, not sampling, and lives here exactly once.
//
// An engine contributes a *Stepper* (see the concept below): how to draw
// and apply one interaction, how to test silence, and how to export /
// restore its configuration.  `run_loop(stepper, protocol, options)` drives
// it and returns the engine-independent RunResult.
//
// On top of the unified loop sits deterministic checkpoint/resume: with
// RunOptions::checkpoint_every = c, a RunCheckpoint is delivered to
// RunOptions::checkpoint_sink at every interaction index that is a multiple
// of c.  A checkpoint captures the complete loop state — configuration,
// exact RNG stream position, counters, stop-tracker state — so that
// resuming from it (RunOptions::resume_from) replays the identical RNG
// stream and produces a RunResult and trajectory bit-identical to the
// uninterrupted run.  Two subtleties make this exact:
//
//  * A checkpoint boundary that falls inside the batch engine's geometric
//    null skip does not redraw: the checkpoint records the not-yet-executed
//    remainder of the skip (`pending_null_skips`), and the resumed loop
//    consumes it before drawing again.  This mirrors how snapshots are
//    clamped at schedule boundaries.
//  * Resuming a periodic-silence engine does *not* re-test silence at the
//    cut: the uninterrupted run would not have tested there either, and an
//    early kSilent stop would change the reported interaction count.
//
// The only observable difference a checkpointed run may exhibit is that an
// observer's on_null_run events can be split at checkpoint boundaries
// (total length is unchanged).

#ifndef POPPROTO_CORE_RUN_LOOP_H
#define POPPROTO_CORE_RUN_LOOP_H

#include <chrono>
#include <concepts>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/configuration.h"
#include "core/observer.h"
#include "core/require.h"
#include "core/rng.h"
#include "core/simulator.h"
#include "core/tabulated_protocol.h"
#include "telemetry/telemetry.h"

namespace popproto {

// ---------------------------------------------------------------------------
// Shared policy defaults (the former per-engine copy-paste)

/// The effective interaction budget: options.max_interactions, or
/// default_budget(population) when the option is 0.
std::uint64_t resolved_budget(const RunOptions& options, std::uint64_t population);

/// The effective silence-check period: options.silence_check_period, or
/// max(4 * population, 1024) when the option is 0.
std::uint64_t resolved_silence_check_period(const RunOptions& options,
                                            std::uint64_t population);

/// True iff no ordered pair of present states changes the multiset (swaps
/// and identities are null) — the silence predicate evaluated directly on a
/// raw count vector, shared by the per-agent steppers.
bool multiset_silent(const TabulatedProtocol& protocol,
                     const std::vector<std::uint64_t>& counts);

/// Throws unless options.engine is kAuto or `accepted`; `entry_point` names
/// the caller in the message.  Pass kAuto as `accepted` for engines that
/// have no SimulationEngine value (weighted, graph, scheduler).
void require_engine_field(const RunOptions& options, SimulationEngine accepted,
                          const char* entry_point);

// ---------------------------------------------------------------------------
// Checkpoints

/// Complete, serializable state of a suspended run.  Exactly one of
/// `counts` / `agent_states` is populated, per the engine's representation.
struct RunCheckpoint {
    /// Schema version of the serialized form.
    static constexpr int kFormatVersion = 1;

    ObservedEngine engine = ObservedEngine::kAgentArray;
    std::uint64_t population = 0;
    std::uint64_t num_states = 0;

    /// Exact RNG stream position (Rng::save_state / restore_state).
    Rng::StreamState rng;

    // RunResult counters at the cut.
    std::uint64_t interactions = 0;
    std::uint64_t effective_interactions = 0;
    std::uint64_t last_output_change = 0;

    // Stop-tracker state of the periodic silence check (unused by engines
    // with exact or no silence detection, but carried for uniformity).
    std::uint64_t next_silence_check = 0;
    bool changed_since_silence_check = true;

    /// Batch engine only: the geometric null-skip draw preceding the next
    /// effective interaction was already consumed from the RNG stream, and
    /// `pending_null_skips` of it remain unexecuted at the cut.  The
    /// resumed loop replays the remainder without redrawing.
    bool has_pending_skip = false;
    std::uint64_t pending_null_skips = 0;

    /// Parallel collapsed engine only: the per-shard child RNG streams, in
    /// shard order (size == the run's thread count K).  Shards keep drawing
    /// from their own streams across super-steps, so a checkpoint must
    /// carry all K positions alongside the parent stream in `rng`; resuming
    /// requires the same K (the serial engine leaves this empty).
    std::vector<Rng::StreamState> shard_rngs;

    /// Phase-adaptive dispatcher section (simulate_adaptive): the engine
    /// monitor's mutable state at the cut, so a resumed adaptive run replays
    /// its switch decisions exactly.  `engine` still names the concrete
    /// segment engine (count_batch or collapsed) that wrote the checkpoint —
    /// static-engine resumes of an adaptive checkpoint remain legal and the
    /// section is simply ignored there.  Thresholds are not captured; the
    /// caller re-supplies RunOptions::adaptive like the seed.
    bool adaptive = false;
    std::uint64_t adaptive_switches = 0;
    std::uint64_t adaptive_last_switch = 0;
    std::uint64_t adaptive_next_eval = 0;

    /// Interaction-model section: which pairing model drove the run and the
    /// model's serialized word state (cursor positions, permutations, agent
    /// positions — see interaction_model.h).  Stateless built-in models
    /// (uniform, weighted, static graph) leave the name empty and the line
    /// is omitted, keeping their serialized form byte-identical to
    /// checkpoints written before the interaction-model layer existed.
    std::string interaction_model;
    std::vector<std::uint64_t> model_state;

    /// Multiset configuration (count engines: simulate_counts).
    std::vector<std::uint64_t> counts;
    /// Per-agent configuration (agent engines: simulate, simulate_weighted,
    /// simulate_on_graph).
    std::vector<State> agent_states;

    friend bool operator==(const RunCheckpoint&, const RunCheckpoint&) = default;
};

/// Receives checkpoints as the run crosses checkpoint_every boundaries.
/// Called synchronously from the simulating thread; the reference is only
/// valid for the duration of the call.
class CheckpointSink {
public:
    virtual ~CheckpointSink() = default;
    virtual void on_checkpoint(const RunCheckpoint& checkpoint) = 0;
};

/// Writes `checkpoint` in the line-oriented text format (versioned, self-
/// describing; see run_loop.cpp for the grammar).
void write_checkpoint(std::ostream& out, const RunCheckpoint& checkpoint);

/// Parses a checkpoint previously written by `write_checkpoint`; throws
/// std::invalid_argument on malformed input.
RunCheckpoint read_checkpoint(std::istream& in);

/// Convenience string round-trip of write_checkpoint / read_checkpoint.
std::string checkpoint_to_string(const RunCheckpoint& checkpoint);
RunCheckpoint checkpoint_from_string(const std::string& text);

/// Persists `checkpoint` to `path` atomically: the serialized form is
/// written to `path` + ".tmp" and renamed over `path`, so an interrupt or
/// crash mid-write never clobbers the previous good checkpoint.  Used by
/// trace_run's --checkpoint sink and the service daemon's eviction spill.
/// Throws std::runtime_error naming the failing path (and errno text) when
/// the temporary cannot be written or the rename fails.
void write_checkpoint_atomic(const std::string& path, const RunCheckpoint& checkpoint);

/// Reads a checkpoint file previously produced by `write_checkpoint_atomic`
/// (or any stream written by `write_checkpoint`).  Throws
/// std::runtime_error naming `path` when the file cannot be opened, and
/// std::invalid_argument with the line number and offending token on
/// malformed content.
RunCheckpoint read_checkpoint_file(const std::string& path);

/// Re-labels `checkpoint` for resumption under another engine — the
/// checkpoint-shaped state transfer at the heart of the adaptive dispatcher.
/// Legal exactly between the two count-representation engines (count_batch
/// <-> collapsed): both suspend to the same payload (counts + one serial RNG
/// stream + counters), so flipping the engine tag *is* the transfer and the
/// resumed run draws from the identical stream position.  Throws when the
/// source or target engine is not transferable, when a pending null skip is
/// outstanding (the skip draw belongs to the source engine's stream
/// semantics), or when the checkpoint carries shard streams or a per-agent
/// configuration.
void transfer_checkpoint_engine(RunCheckpoint& checkpoint, ObservedEngine target);

// ---------------------------------------------------------------------------
// The Stepper concept

/// How a stepper participates in silence detection.
enum class SilenceMode {
    /// is_silent() is an O(1) exact predicate maintained by step() (the
    /// batch engine's W == 0); evaluated after every effective interaction,
    /// never reported via on_silence_check.
    kExact,
    /// is_silent() is an expensive full test; the kernel schedules it every
    /// resolved_silence_check_period interactions, skips it when nothing
    /// changed since the last test, re-tests at budget expiry (so a sound
    /// kSilent is never misreported as kBudget), and reports each test via
    /// on_silence_check.
    kPeriodic,
    /// Silence is never tested (graph runs: group (d) swaps fire forever).
    kNever,
};

/// One interaction's outcome, reported by Stepper::step.
struct StepOutcome {
    /// The interaction changed the engine's configuration (state multiset
    /// or some agent's state, per the engine's bookkeeping contract).
    bool changed = false;
    /// The interaction changed an output (implies `changed`).
    bool output_changed = false;
};

/// One super-step's aggregate outcome, reported by
/// Stepper::apply_super_step (super-step engines only).
struct BatchOutcome {
    /// How many of the executed interactions changed the state multiset.
    std::uint64_t effective = 0;
    /// Some executed interaction changed the multiset of outputs.  The
    /// kernel stamps last_output_change at the *end* of the super-step (the
    /// exact interaction index inside the batch is not resolved — a
    /// documented coarsening; see collapsed_simulator.h).
    bool output_changed = false;
};

/// Requirements common to both stepper flavours.  The kernel owns *when* to
/// step, check, snapshot, stop, and checkpoint; the stepper owns *how* to
/// sample and apply interactions.
///
/// RNG discipline: the kernel never consumes randomness itself.  Exactly
/// the stepper's proposal/step methods draw from the stream, in loop order,
/// which is what makes checkpoints (a stream position plus the stepper
/// state) exact.
template <typename S>
concept StepperBase = requires(S stepper, const S const_stepper, RunCheckpoint& checkpoint,
                               const RunCheckpoint& const_checkpoint) {
    { S::kEngine } -> std::convertible_to<ObservedEngine>;
    { S::kSilenceMode } -> std::convertible_to<SilenceMode>;
    /// Whether propose_skip can return nonzero.  False compiles the whole
    /// skip/clamp machinery out of the loop, keeping per-interaction
    /// engines on the same tight hot path their private loops had.
    { S::kGeometricSkips } -> std::convertible_to<bool>;
    /// Whether the stepper advances in multi-interaction super-steps
    /// (propose_super_step / apply_super_step) instead of one step() per
    /// interaction.  Mutually exclusive with kGeometricSkips.
    { S::kSuperSteps } -> std::convertible_to<bool>;
    { const_stepper.population() } -> std::convertible_to<std::uint64_t>;
    { const_stepper.is_silent() } -> std::convertible_to<bool>;
    /// Current configuration as a state multiset (snapshots, final result).
    { const_stepper.counts() } -> std::same_as<CountConfiguration>;
    /// Export / import the engine-specific configuration payload of a
    /// checkpoint (the kernel fills every other field).
    { const_stepper.save(checkpoint) };
    { stepper.restore(const_checkpoint) };
};

/// The classic flavour: one step() per interaction, optionally preceded by
/// a geometric null-skip proposal.
template <typename S>
concept SingleStepStepper = StepperBase<S> && !S::kSuperSteps &&
    requires(S stepper, Rng& rng) {
        /// Number of consecutive null interactions to jump before the next
        /// step() (only called when kGeometricSkips; must be 0 for engines
        /// that execute every interaction explicitly).
        { stepper.propose_skip(rng) } -> std::convertible_to<std::uint64_t>;
        { stepper.step(rng) } -> std::same_as<StepOutcome>;
    };

/// The super-step flavour (collapsed_simulator.cpp): propose_super_step
/// draws the length of the maximal collision-free run of pairs; the kernel
/// clamps it at the earliest boundary it must observe exactly (snapshot,
/// checkpoint, stable-output window, silence check, budget) and calls
/// apply_super_step(rng, m, with_collision) to execute m collision-free
/// pairs, plus the single colliding interaction when the run was not
/// clamped.  Clamping is exact, not approximate: the first m pairs of a
/// collision-free run of length >= m are themselves distributed as a
/// collision-free batch of length m, and the count process is Markov, so
/// the next proposal restarts fresh (this does make the *pathwise*
/// trajectory sensitive to boundary placement — equivalence across
/// observation setups is distributional, not stream-level).
template <typename S>
concept SuperStepStepper = StepperBase<S> && S::kSuperSteps && !S::kGeometricSkips &&
    requires(S stepper, Rng& rng, std::uint64_t m) {
        /// Length (>= 1) of the maximal collision-free run of ordered
        /// pairs; the colliding interaction that terminates it would be
        /// pair number length + 1.
        { stepper.propose_super_step(rng) } -> std::convertible_to<std::uint64_t>;
        { stepper.apply_super_step(rng, m, true) } -> std::same_as<BatchOutcome>;
    };

/// What an engine supplies to the kernel: one of the two flavours above.
template <typename S>
concept Stepper = SingleStepStepper<S> || SuperStepStepper<S>;

/// Steppers that honour RunOptions::threads > 1 declare `static constexpr
/// bool kParallel = true` (the sharded collapsed stepper is the only one).
/// For every other stepper the kernel rejects threads > 1 up front, so a
/// thread request can never be silently ignored by a sequential engine —
/// the same never-ignore contract as SimulationEngine resolution.
template <typename S>
concept ParallelStepper = Stepper<S> && requires {
    { S::kParallel } -> std::convertible_to<bool>;
} && S::kParallel;

// ---------------------------------------------------------------------------
// The kernel

namespace run_loop_detail {

inline double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace run_loop_detail

/// Drives `stepper` under the full run policy and returns the result.
/// `entry_point` names the public API for error messages.
template <Stepper S>
RunResult run_loop(S& stepper, const TabulatedProtocol& protocol, const RunOptions& options,
                   const char* entry_point) {
    constexpr SilenceMode kMode = S::kSilenceMode;
    const std::string where(entry_point);

    const std::uint64_t n = stepper.population();
    require(n >= 2, where + ": need at least two agents");
    const std::uint64_t budget = resolved_budget(options, n);
    const std::uint64_t check_period = resolved_silence_check_period(options, n);
    const std::uint64_t window = options.stop_after_stable_outputs;
    const std::uint64_t checkpoint_every = options.checkpoint_every;
    require(checkpoint_every == 0 || options.checkpoint_sink != nullptr,
            where + ": checkpoint_every requires a checkpoint_sink");
    require(options.pause_after == 0 || options.checkpoint_sink != nullptr,
            where + ": pause_after requires a checkpoint_sink");
    require(options.switch_monitor == nullptr || options.checkpoint_sink != nullptr,
            where + ": switch_monitor requires a checkpoint_sink");
    if constexpr (!ParallelStepper<S>) {
        // threads == 0 (auto) is fine — it resolves to 1 for sequential
        // engines — but an explicit request for parallelism is not.
        require(options.threads <= 1,
                where + ": this engine is sequential; threads > 1 is only "
                        "supported by the collapsed engine");
    }

    Rng rng(options.seed);
    RunResult result{CountConfiguration(protocol.num_states()), StopReason::kBudget, 0, 0, 0,
                     std::nullopt};
    result.engine = S::kEngine;

    // Performance probes.  A null collector (the default) costs one
    // predicted branch per site; with POPPROTO_TELEMETRY=OFF the sites
    // compile out entirely.  Telemetry never draws randomness and never
    // reads the stepper configuration, so the RunResult is bit-identical
    // with and without it (tests/telemetry_test.cpp).
    telemetry::RunTelemetryCollector* const collector =
        telemetry::kCompiledIn ? options.telemetry : nullptr;
    if (collector) {
        unsigned run_threads = 1;
        if constexpr (requires { { stepper.threads() } -> std::convertible_to<unsigned>; })
            run_threads = stepper.threads();
        collector->begin_run(observed_engine_name(S::kEngine), n, run_threads);
    }

    std::uint64_t next_check = check_period;
    std::uint64_t changed_since_check = 1;
    std::uint64_t pending_skip = 0;
    bool has_pending_skip = false;

    if (options.resume_from != nullptr) {
        const RunCheckpoint& checkpoint = *options.resume_from;
        require(checkpoint.engine == S::kEngine,
                where + ": checkpoint was taken by the " +
                    observed_engine_name(checkpoint.engine) + " engine");
        require(checkpoint.population == n, where + ": checkpoint population mismatch");
        require(checkpoint.num_states == protocol.num_states(),
                where + ": checkpoint state-count mismatch");
        require(checkpoint.interactions <= budget,
                where + ": checkpoint lies beyond max_interactions");
        stepper.restore(checkpoint);
        rng.restore_state(checkpoint.rng);
        result.interactions = checkpoint.interactions;
        result.effective_interactions = checkpoint.effective_interactions;
        result.last_output_change = checkpoint.last_output_change;
        next_check = checkpoint.next_silence_check;
        changed_since_check = checkpoint.changed_since_silence_check ? 1 : 0;
        has_pending_skip = checkpoint.has_pending_skip;
        pending_skip = checkpoint.pending_null_skips;
    }

    // The pause index (RunOptions::pause_after) is one extra checkpoint
    // boundary: it participates in the same schedule (and super-step /
    // null-skip clamping) as the periodic checkpoints, and taking the
    // checkpoint there additionally ends the run with kPaused.
    const std::uint64_t pause_at =
        options.pause_after != 0 ? options.pause_after : SnapshotSchedule::kNever;
    require(pause_at == SnapshotSchedule::kNever || pause_at > result.interactions,
            where + ": pause_after lies at or before the resume point");
    bool paused = false;

    std::uint64_t next_checkpoint = SnapshotSchedule::kNever;
    const auto advance_checkpoint_schedule = [&] {
        next_checkpoint = SnapshotSchedule::kNever;
        if (checkpoint_every != 0 &&
            result.interactions / checkpoint_every <
                SnapshotSchedule::kNever / checkpoint_every - 1)
            next_checkpoint = (result.interactions / checkpoint_every + 1) * checkpoint_every;
        if (pause_at > result.interactions && pause_at < next_checkpoint)
            next_checkpoint = pause_at;
    };
    advance_checkpoint_schedule();

    const auto take_checkpoint = [&](std::uint64_t pending, bool has_pending) {
        RunCheckpoint checkpoint;
        checkpoint.engine = S::kEngine;
        checkpoint.population = n;
        checkpoint.num_states = protocol.num_states();
        checkpoint.rng = rng.save_state();
        checkpoint.interactions = result.interactions;
        checkpoint.effective_interactions = result.effective_interactions;
        checkpoint.last_output_change = result.last_output_change;
        checkpoint.next_silence_check = next_check;
        checkpoint.changed_since_silence_check = changed_since_check != 0;
        checkpoint.has_pending_skip = has_pending;
        checkpoint.pending_null_skips = pending;
        if (options.switch_monitor != nullptr) {
            checkpoint.adaptive = true;
            checkpoint.adaptive_switches = options.switch_monitor->switches();
            checkpoint.adaptive_last_switch = options.switch_monitor->last_switch();
            checkpoint.adaptive_next_eval = options.switch_monitor->next_eval();
        }
        stepper.save(checkpoint);
        options.checkpoint_sink->on_checkpoint(checkpoint);
        if (result.interactions >= pause_at) paused = true;
        advance_checkpoint_schedule();
    };

    RunObserver* const observer = options.observer;
    std::uint64_t next_snapshot = SnapshotSchedule::kNever;
    if (observer)
        next_snapshot = result.interactions == 0 ? options.snapshots.first_index()
                                                 : options.snapshots.next_after(result.interactions);
    // Emits every scheduled snapshot with index <= `limit` from the current
    // configuration.  Clamping a geometric jump at snapshot boundaries
    // reduces to this: a scheduled index inside a run of null interactions
    // sees the configuration unchanged since the last effective interaction,
    // so the jump is kept (no extra randomness is drawn — observed and
    // unobserved runs are bit-identical) and each boundary is stamped with
    // its exact index.
    const auto emit_snapshots_through = [&](std::uint64_t limit) {
        if (next_snapshot > limit) return;
        const telemetry::ScopedTimer timer(collector, telemetry::Phase::kSnapshotDispatch);
        while (next_snapshot <= limit) {
            observer->on_snapshot(next_snapshot, stepper.counts());
            next_snapshot = options.snapshots.next_after(next_snapshot);
        }
    };

    std::chrono::steady_clock::time_point wall_start;
    std::optional<CountConfiguration> initial_counts;
    if (observer) {
        wall_start = std::chrono::steady_clock::now();
        initial_counts.emplace(stepper.counts());
        RunStartInfo info;
        info.engine = S::kEngine;
        info.population = n;
        info.num_states = protocol.num_states();
        info.seed = options.seed;
        info.max_interactions = budget;
        info.initial = &*initial_counts;
        info.protocol = &protocol;
        observer->on_start(info);
    }

    bool silent = false;
    if constexpr (kMode == SilenceMode::kExact) {
        silent = stepper.is_silent();
    } else if constexpr (kMode == SilenceMode::kPeriodic) {
        if (options.resume_from == nullptr) {
            // A configuration that starts silent terminates immediately.  A
            // *resumed* run skips this test: the uninterrupted run would not
            // test at the cut either, and stopping early would change the
            // reported interaction count.
            {
                const telemetry::ScopedTimer timer(collector,
                                                   telemetry::Phase::kSilenceCheck);
                silent = stepper.is_silent();
            }
            if (observer) observer->on_silence_check(0, silent);
        }
    }

    const std::atomic<bool>* const stop_flag = options.stop_flag;
    while (!silent && result.interactions < budget) {
        // Cooperative stop: a raised flag ends the run at this loop
        // boundary.  The final checkpoint carries any not-yet-consumed
        // pending skip (a resume right after restoring one lands here
        // before the skip is executed), so resuming is exact.
        if (stop_flag != nullptr && stop_flag->load(std::memory_order_relaxed)) {
            if (options.checkpoint_sink != nullptr)
                take_checkpoint(has_pending_skip ? pending_skip : 0, has_pending_skip);
            paused = true;
            break;
        }
        // Checkpoint due at a loop boundary.  Per-interaction engines reach
        // every index, so this lands exactly on multiples of the period; the
        // batch engine lands here when the multiple coincided with an
        // effective interaction (boundaries inside a null skip are handled
        // below and also land exactly).
        if (result.interactions >= next_checkpoint) {
            take_checkpoint(has_pending_skip ? pending_skip : 0, has_pending_skip);
            if (paused) break;
        }
        // Phase-adaptive dispatch: when the driver planted a switch monitor,
        // poll it at the same loop boundaries checkpoints land on — but only
        // for steppers that expose their exact effective-pair count W, and
        // never while a pending null skip is outstanding (the uninterrupted
        // run evaluates W at the skip's *start* index; re-polling mid-skip
        // after a resume would diverge from it).  A requested switch is
        // exactly a pause: capture the transfer checkpoint here and let the
        // driver resume it under the other engine.  Evaluating the signal
        // consumes no randomness, so unmonitored segments stay bit-identical.
        if constexpr (requires(const S& s) {
                          { s.effective_pairs() } -> std::convertible_to<std::uint64_t>;
                      }) {
            EngineSwitchMonitor* const monitor = options.switch_monitor;
            if (monitor != nullptr && !has_pending_skip && monitor->due(result.interactions) &&
                monitor->consider(result.interactions, stepper.effective_pairs())) {
                take_checkpoint(0, false);
                paused = true;
                break;
            }
        }

        if constexpr (SuperStepStepper<S>) {
            // One super-step: draw the length of the maximal collision-free
            // run of pairs first, then clamp it — never redraw — at the
            // earliest index the kernel must observe exactly.
            std::uint64_t run_length;
            {
                const telemetry::ScopedTimer timer(collector,
                                                   telemetry::Phase::kRunLengthDraw);
                run_length = stepper.propose_super_step(rng);
            }

            std::uint64_t boundary = budget;
            if (next_snapshot < boundary) boundary = next_snapshot;
            if (next_checkpoint < boundary) boundary = next_checkpoint;
            if (window != 0 && result.last_output_change != 0 &&
                result.last_output_change + window < boundary)
                boundary = result.last_output_change + window;
            if constexpr (kMode == SilenceMode::kPeriodic) {
                if (next_check < boundary) boundary = next_check;
            }
            // Every boundary lies strictly ahead of the current index
            // (due snapshots/checkpoints were already emitted above, stop
            // rules would have fired), so at least one interaction fits.
            const std::uint64_t limit = boundary - result.interactions;

            // When the whole run fits, execute it plus the single colliding
            // interaction that terminated it; otherwise clamp at the
            // boundary — exactly `limit` collision-free pairs and no
            // colliding interaction (exact; see the SuperStepStepper
            // concept note).
            const bool clamped = run_length >= limit;
            const std::uint64_t pairs = clamped ? limit : run_length;
            BatchOutcome outcome;
            {
                const telemetry::ScopedTimer timer(collector,
                                                   telemetry::Phase::kSuperStepApply);
                outcome = stepper.apply_super_step(rng, pairs, !clamped);
            }
            result.interactions += pairs + (clamped ? 0 : 1);
            if (collector) collector->record_super_step(pairs, clamped);
            if (outcome.effective != 0) {
                result.effective_interactions += outcome.effective;
                changed_since_check = 1;
            }
            if (outcome.output_changed) {
                result.last_output_change = result.interactions;
                if (observer) observer->on_output_change(result.interactions);
            }
            if constexpr (kMode == SilenceMode::kExact) silent = stepper.is_silent();
        } else if constexpr (S::kGeometricSkips) {
            std::uint64_t skips;
            if (has_pending_skip) {
                skips = pending_skip;
                has_pending_skip = false;
            } else {
                skips = stepper.propose_skip(rng);
            }

            // Where does the null run actually end?  `target_end` is the
            // index of its last null interaction; the effective interaction
            // would land at target_end + 1.  The stable-output window and
            // the budget can both cut the run inside the nulls (which
            // change nothing, so the stop index is exact); the window wins
            // ties, as it always has.
            const std::uint64_t target_end = result.interactions + skips;
            std::uint64_t stop_at = 0;
            if (window != 0 && result.last_output_change != 0)
                stop_at = result.last_output_change + window;

            enum class SkipEnd { kRunOn, kStableOutputs, kBudget };
            SkipEnd skip_end = SkipEnd::kRunOn;
            std::uint64_t end_index = target_end;
            if (stop_at != 0 && stop_at <= target_end && stop_at <= budget) {
                skip_end = SkipEnd::kStableOutputs;
                end_index = stop_at;
            } else if (target_end >= budget) {
                skip_end = SkipEnd::kBudget;
                end_index = budget;
            }

            // Checkpoint boundaries inside the null run: materialize each
            // multiple of checkpoint_every strictly before the run's end
            // (or up to and including target_end when the run continues),
            // recording the unexecuted remainder of the skip.  Note this
            // may split the observer's on_null_run report; the total length
            // is unchanged.
            while (next_checkpoint <= end_index &&
                   (skip_end == SkipEnd::kRunOn || next_checkpoint < end_index)) {
                if (observer) emit_snapshots_through(next_checkpoint);
                if (next_checkpoint > result.interactions) {
                    if (observer) observer->on_null_run(next_checkpoint - result.interactions);
                    if (collector) collector->record_skip(next_checkpoint - result.interactions);
                }
                result.interactions = next_checkpoint;
                take_checkpoint(target_end - result.interactions, true);
                if (paused) break;
            }
            if (paused) break;  // pause boundary inside the null run

            if (skip_end != SkipEnd::kRunOn) {
                if (observer) emit_snapshots_through(end_index);
                if (end_index > result.interactions) {
                    if (observer) observer->on_null_run(end_index - result.interactions);
                    if (collector) collector->record_skip(end_index - result.interactions);
                }
                result.interactions = end_index;
                if (skip_end == SkipEnd::kStableOutputs)
                    result.stop_reason = StopReason::kStableOutputs;
                break;  // kBudget: stop_reason already defaults to kBudget
            }
            if (skips != 0) {
                if (observer) emit_snapshots_through(target_end);
                if (target_end > result.interactions) {
                    if (observer) observer->on_null_run(target_end - result.interactions);
                    if (collector) collector->record_skip(target_end - result.interactions);
                }
            }

            // The effective interaction terminating the null run.
            result.interactions = target_end + 1;
        } else {
            ++result.interactions;
        }
        if constexpr (!SuperStepStepper<S>) {
            const StepOutcome outcome = stepper.step(rng);
            if (outcome.changed) {
                ++result.effective_interactions;
                changed_since_check = 1;
                if (outcome.output_changed) {
                    result.last_output_change = result.interactions;
                    if (observer) observer->on_output_change(result.interactions);
                }
            }
            if constexpr (kMode == SilenceMode::kExact) silent = stepper.is_silent();
        }

        if (result.interactions >= next_snapshot) emit_snapshots_through(result.interactions);

        if (window != 0 && result.last_output_change != 0 &&
            result.interactions - result.last_output_change >= window) {
            result.stop_reason = StopReason::kStableOutputs;
            break;
        }

        if constexpr (kMode == SilenceMode::kPeriodic) {
            if (result.interactions >= next_check) {
                next_check = result.interactions + check_period;
                if (changed_since_check != 0) {
                    // Only re-test silence if something changed since last test.
                    {
                        const telemetry::ScopedTimer timer(collector,
                                                           telemetry::Phase::kSilenceCheck);
                        silent = stepper.is_silent();
                    }
                    changed_since_check = 0;
                    if (observer) observer->on_silence_check(result.interactions, silent);
                }
            }
        }

        if (collector) collector->publish_interactions(result.interactions);
    }

    if constexpr (kMode == SilenceMode::kPeriodic) {
        if (!paused && !silent && result.interactions >= budget) {
            // The budget can expire between silence checks; a final test
            // keeps the sound kSilent certificate from being misreported as
            // kBudget.
            {
                const telemetry::ScopedTimer timer(collector,
                                                   telemetry::Phase::kSilenceCheck);
                silent = stepper.is_silent();
            }
            if (observer) observer->on_silence_check(result.interactions, silent);
        }
    }
    if constexpr (kMode != SilenceMode::kNever) {
        if (silent) result.stop_reason = StopReason::kSilent;
    }
    // A pause is never also a terminal stop: the loop breaks before
    // stepping, so `silent` cannot have been set in the same iteration.
    if (paused) result.stop_reason = StopReason::kPaused;

    result.final_configuration = stepper.counts();
    result.consensus = result.final_configuration.consensus_output(protocol);
    // Telemetry finishes before on_stop so stop-time consumers (e.g. the
    // JSONL writer's "telemetry" event) see the completed RunTelemetry.
    if (collector) {
        collector->finish_run(result.interactions, result.effective_interactions);
        result.telemetry = collector->share();
    }
    if (observer) observer->on_stop(result, run_loop_detail::seconds_since(wall_start));
    return result;
}

}  // namespace popproto

#endif  // POPPROTO_CORE_RUN_LOOP_H
