// Format-preserving pseudorandom permutation of [0, domain) in O(1) state.
//
// The sweep and adversarial interaction models replay a random permutation
// of all n(n-1) ordered agent pairs per epoch.  Materializing that
// permutation (Fisher-Yates over a vector of pair indices) costs O(n^2)
// memory, which caps those scenarios near n = 2^13.  A keyed balanced
// Feistel network computes the same *kind* of object — a bijection of the
// pair-index domain determined by a handful of key words — lazily: position
// -> pair index in O(1) time with O(1) state, so an epoch permutation at
// n = 2^16 (4.3e9 pairs) costs 8 words instead of 34 GB.
//
// Construction: split a 2b-bit carrier (b = ceil(bits(domain)/2), so the
// carrier is < 4x the domain) into b-bit halves and run kRounds Feistel
// rounds with a splitmix64-style keyed round function; outputs that land
// outside [0, domain) are cycle-walked (re-encrypted) back in, which
// preserves bijectivity on the domain and terminates in < 4 expected
// iterations.  Eight rounds are far past the Luby-Rackoff bound for
// statistical indistinguishability at simulation quality — chi-square
// tests (tests/feistel_test.cpp) pin parity with the materialized
// shuffle — but this is not a cryptographic primitive.

#ifndef POPPROTO_CORE_FEISTEL_H
#define POPPROTO_CORE_FEISTEL_H

#include <array>
#include <bit>
#include <cstdint>

#include "core/require.h"
#include "core/rng.h"

namespace popproto {

class FeistelPermutation {
public:
    static constexpr std::size_t kRounds = 8;

    FeistelPermutation() { set_domain(1); }

    /// Permutation of [0, domain), keyed by kRounds draws from `rng`.
    FeistelPermutation(std::uint64_t domain, Rng& rng) {
        set_domain(domain);
        rekey(rng);
    }

    /// Rebuild from previously saved keys (checkpoint restore).
    FeistelPermutation(std::uint64_t domain, const std::array<std::uint64_t, kRounds>& keys)
        : keys_(keys) {
        set_domain(domain);
    }

    std::uint64_t domain() const { return domain_; }
    const std::array<std::uint64_t, kRounds>& keys() const { return keys_; }

    /// Re-key in place (start of a new epoch); kRounds draws from `rng`, in
    /// round order.
    void rekey(Rng& rng) {
        for (std::uint64_t& key : keys_) key = rng();
    }

    /// The image of `index` (must be < domain).  Cycle-walks until the
    /// Feistel output lands back inside the domain.
    std::uint64_t operator()(std::uint64_t index) const {
        std::uint64_t value = index;
        do {
            value = encrypt(value);
        } while (value >= domain_);
        return value;
    }

private:
    void set_domain(std::uint64_t domain) {
        require(domain >= 1, "FeistelPermutation: domain must be >= 1");
        domain_ = domain;
        const int bits = domain > 1 ? std::bit_width(domain - 1) : 1;
        half_bits_ = static_cast<unsigned>((bits + 1) / 2);
        half_mask_ = (std::uint64_t{1} << half_bits_) - 1;
    }

    /// splitmix64 finalizer: full-avalanche 64-bit mix.
    static std::uint64_t mix(std::uint64_t z) {
        z ^= z >> 30;
        z *= 0xbf58476d1ce4e5b9ULL;
        z ^= z >> 27;
        z *= 0x94d049bb133111ebULL;
        z ^= z >> 31;
        return z;
    }

    /// One pass of the balanced Feistel network over the 2b-bit carrier.
    std::uint64_t encrypt(std::uint64_t value) const {
        std::uint64_t left = value >> half_bits_;
        std::uint64_t right = value & half_mask_;
        for (const std::uint64_t key : keys_) {
            const std::uint64_t f = mix(right + key) & half_mask_;
            const std::uint64_t next_right = left ^ f;
            left = right;
            right = next_right;
        }
        return (left << half_bits_) | right;
    }

    std::uint64_t domain_ = 1;
    unsigned half_bits_ = 1;
    std::uint64_t half_mask_ = 1;
    std::array<std::uint64_t, kRounds> keys_{};
};

}  // namespace popproto

#endif  // POPPROTO_CORE_FEISTEL_H
