// Precondition / invariant checking helpers used across the library.
//
// We follow the guidelines' preference for exceptions over error codes
// (I.10, E.2): a violated precondition throws std::invalid_argument and a
// violated internal invariant throws std::logic_error.  Both carry the
// caller-supplied message.

#ifndef POPPROTO_CORE_REQUIRE_H
#define POPPROTO_CORE_REQUIRE_H

#include <stdexcept>
#include <string>

namespace popproto {

/// Throws std::invalid_argument with `what` unless `condition` holds.
/// Use for preconditions on public interfaces.
inline void require(bool condition, const std::string& what) {
    if (!condition) throw std::invalid_argument(what);
}

/// Throws std::logic_error with `what` unless `condition` holds.
/// Use for internal invariants that indicate a library bug when violated.
inline void ensure(bool condition, const std::string& what) {
    if (!condition) throw std::logic_error(what);
}

}  // namespace popproto

#endif  // POPPROTO_CORE_REQUIRE_H
