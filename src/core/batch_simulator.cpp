#include "core/batch_simulator.h"

#include <cstdint>
#include <vector>

#include "core/collapsed_simulator.h"
#include "core/effect_tables.h"
#include "core/require.h"
#include "core/rng.h"
#include "core/run_loop.h"

namespace popproto {

namespace {

/// The count-based multiset sampler (batch_simulator.h): pairs are drawn
/// from the count vector, runs of null interactions are proposed as exact
/// geometric jumps, and W == 0 detects silence exactly.
class CountBatchStepper {
public:
    static constexpr ObservedEngine kEngine = ObservedEngine::kCountBatch;
    static constexpr SilenceMode kSilenceMode = SilenceMode::kExact;
    static constexpr bool kGeometricSkips = true;
    static constexpr bool kSuperSteps = false;

    CountBatchStepper(const TabulatedProtocol& protocol, const CountConfiguration& initial)
        : protocol_(protocol),
          eff_(protocol),
          counts_(initial.counts()),
          population_(initial.population_size()),
          total_pairs_(static_cast<double>(population_) *
                       static_cast<double>(population_ - 1)) {
        rebuild_rowdot();
    }

    std::uint64_t population() const { return population_; }

    bool is_silent() const { return W_ == 0; }

    std::uint64_t propose_skip(Rng& rng) {
        // Jump over the geometric run of null interactions preceding the
        // next effective one.
        return rng.geometric_skips(static_cast<double>(W_) / total_pairs_);
    }

    StepOutcome step(Rng& rng) {
        // Sample the effective ordered pair (p, q) with probability
        // proportional to c_p * (c_q - [p == q]) over effective pairs.
        const std::size_t num_states = eff_.num_states;
        std::uint64_t u = rng.below(W_);
        State p = 0;
        State q = 0;
        bool found = false;
        for (State pi = 0; pi < num_states && !found; ++pi) {
            if (counts_[pi] == 0) continue;
            const std::uint64_t rw = row_weight(pi);
            if (u >= rw) {
                u -= rw;
                continue;
            }
            const std::uint8_t* row =
                eff_.eff_row.data() + static_cast<std::size_t>(pi) * num_states;
            for (State qi = 0; qi < num_states; ++qi) {
                if (!row[qi]) continue;
                const std::uint64_t pair_weight =
                    counts_[pi] * (counts_[qi] - (pi == qi ? 1 : 0));
                if (u < pair_weight) {
                    p = pi;
                    q = qi;
                    found = true;
                    break;
                }
                u -= pair_weight;
            }
        }
        ensure(found, "simulate_counts: internal pair-sampling invariant violated");

        const StatePair next = protocol_.apply_fast(p, q);
        const Symbol out_p = protocol_.output_fast(p);
        const Symbol out_q = protocol_.output_fast(q);
        const Symbol out_pn = protocol_.output_fast(next.initiator);
        const Symbol out_qn = protocol_.output_fast(next.responder);

        StepOutcome outcome;
        outcome.changed = true;  // effective by construction of the sampler
        outcome.output_changed =
            !((out_pn == out_p && out_qn == out_q) || (out_pn == out_q && out_qn == out_p));

        adjust_count(p, -1);
        adjust_count(q, -1);
        adjust_count(next.initiator, +1);
        adjust_count(next.responder, +1);
        return outcome;
    }

    CountConfiguration counts() const { return CountConfiguration::from_state_counts(counts_); }

    void save(RunCheckpoint& checkpoint) const { checkpoint.counts = counts_; }

    void restore(const RunCheckpoint& checkpoint) {
        require(checkpoint.counts.size() == counts_.size(),
                "simulate_counts: checkpoint state-count mismatch");
        std::uint64_t total = 0;
        for (const std::uint64_t count : checkpoint.counts) total += count;
        require(total == population_, "simulate_counts: checkpoint population mismatch");
        counts_ = checkpoint.counts;
        rebuild_rowdot();
    }

private:
    std::uint64_t row_weight(State p) const {
        return counts_[p] * static_cast<std::uint64_t>(rowdot_[p] - diag(p));
    }

    std::int64_t diag(State p) const {
        return eff_.eff_row[static_cast<std::size_t>(p) * eff_.num_states + p];
    }

    // W = number of effective ordered agent pairs
    //   = sum_p c_p * (rowdot[p] - eff[p][p]); W == 0 iff the configuration
    // is silent.  Partial sums are bounded by n^2 + n, so uint64 is exact.
    std::uint64_t total_effective_pairs() const {
        std::uint64_t w = 0;
        for (State p = 0; p < eff_.num_states; ++p)
            if (counts_[p] != 0) w += row_weight(p);
        return w;
    }

    /// Applies `delta` to the count of state s and keeps rowdot *and W_*
    /// consistent.  W changes only through the rows the column touches, so
    /// maintaining it here is O(|Q|) per changed state instead of the O(|Q|)
    /// full resummation per *step* that total_effective_pairs() would cost
    /// — step() touches at most 4 states, most of whose columns are sparse.
    ///
    /// With c = counts_[s], R = rowdot_[s], e = eff[s][s] all read *before*
    /// the update, and colsum = sum_p counts_[p] * eff[p][s] (also pre-
    /// update), the exact integer delta is
    ///
    ///   dW = delta * (colsum - c * e)      (rows p != s: c_p * eff[p][s])
    ///      + delta * (R - e)              (row s: its weight gains delta
    ///      + delta * e * (c + delta)       copies of the old row sum, and
    ///                                      the diagonal term re-enters with
    ///                                      the new count)
    ///
    /// |dW| <= 4n, so the int64 arithmetic is exact; W itself can exceed
    /// int64 (W <= n(n-1) with n < 2^32), so the signed delta is applied to
    /// the uint64 accumulator via two's-complement wraparound.
    void adjust_count(State s, std::int64_t delta) {
        const std::uint8_t* col =
            eff_.eff_col.data() + static_cast<std::size_t>(s) * eff_.num_states;
        const auto c = static_cast<std::int64_t>(counts_[s]);
        const std::int64_t rowsum = rowdot_[s];
        const std::int64_t e = diag(s);
        std::int64_t colsum = 0;
        for (State p = 0; p < eff_.num_states; ++p) {
            colsum += static_cast<std::int64_t>(col[p]) * static_cast<std::int64_t>(counts_[p]);
            rowdot_[p] += static_cast<std::int64_t>(col[p]) * delta;
        }
        counts_[s] = static_cast<std::uint64_t>(c + delta);
        const std::int64_t dw =
            delta * (colsum - c * e) + delta * (rowsum - e) + delta * e * (c + delta);
        W_ += static_cast<std::uint64_t>(dw);
    }

    // rowdot[p] = sum_q eff[p][q] * counts[q]: the number of agents whose
    // state forms an effective ordered pair with an initiator in state p
    // (before the diagonal "needs two agents" correction).
    void rebuild_rowdot() {
        const std::size_t num_states = eff_.num_states;
        rowdot_.assign(num_states, 0);
        for (State p = 0; p < num_states; ++p) {
            std::int64_t dot = 0;
            const std::uint8_t* row =
                eff_.eff_row.data() + static_cast<std::size_t>(p) * num_states;
            for (State q = 0; q < num_states; ++q)
                dot += static_cast<std::int64_t>(row[q]) * static_cast<std::int64_t>(counts_[q]);
            rowdot_[p] = dot;
        }
        W_ = total_effective_pairs();
    }

    const TabulatedProtocol& protocol_;
    EffectTables eff_;
    std::vector<std::uint64_t> counts_;
    std::vector<std::int64_t> rowdot_;
    std::uint64_t W_ = 0;
    std::uint64_t population_;
    double total_pairs_;
};

}  // namespace

RunResult simulate_counts(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                          const RunOptions& options) {
    require(initial.num_states() == protocol.num_states(),
            "simulate_counts: configuration does not match protocol");
    const std::uint64_t n = initial.population_size();
    require(n >= 2, "simulate_counts: need at least two agents");
    require(n < (std::uint64_t{1} << 32), "simulate_counts: population must fit 32 bits");
    require_engine_field(options, SimulationEngine::kCountBatch, "simulate_counts");

    CountBatchStepper stepper(protocol, initial);
    return run_loop(stepper, protocol, options, "simulate_counts");
}

RunResult run_simulation(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                         const RunOptions& options) {
    switch (options.engine) {
        case SimulationEngine::kCountBatch:
            return simulate_counts(protocol, initial, options);
        case SimulationEngine::kCollapsedBatch:
            return simulate_collapsed(protocol, initial, options);
        case SimulationEngine::kAgentArray:
            return simulate(protocol, initial, options);
        case SimulationEngine::kAuto:
            break;
    }
    // A request for intra-run parallelism pins the collapsed engine: it is
    // the only one that honours threads > 1, and letting the size-based
    // choice route the request to a sequential engine would just trip the
    // kernel's never-ignore check.
    if (options.threads > 1) return simulate_collapsed(protocol, initial, options);
    // Size-based auto-selection (see the threshold constants in
    // simulator.h): the count engines need the multiset view anyway, so the
    // only inputs are the population and the documented crossover points.
    const std::uint64_t n = initial.population_size();
    if (n >= kAutoCollapsedThreshold) return simulate_collapsed(protocol, initial, options);
    if (n >= kAutoCountBatchThreshold) return simulate_counts(protocol, initial, options);
    return simulate(protocol, initial, options);
}

}  // namespace popproto
