#include "core/batch_simulator.h"

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/require.h"
#include "core/rng.h"

namespace popproto {

namespace {

/// Precomputed per-protocol classification of ordered state pairs.
///
/// eff_row[p * Q + q] is 1 iff delta(p, q) changes the multiset {p, q}
/// (identities and swaps are null); eff_col is its transpose so that the
/// rowdot update for one changed state reads a contiguous column.
struct EffectTables {
    std::vector<std::uint8_t> eff_row;
    std::vector<std::uint8_t> eff_col;
    std::size_t num_states;

    explicit EffectTables(const TabulatedProtocol& protocol)
        : eff_row(protocol.num_states() * protocol.num_states(), 0),
          eff_col(protocol.num_states() * protocol.num_states(), 0),
          num_states(protocol.num_states()) {
        for (const EffectiveTransition& t : protocol.effective_transitions()) {
            eff_row[static_cast<std::size_t>(t.initiator) * num_states + t.responder] = 1;
            eff_col[static_cast<std::size_t>(t.responder) * num_states + t.initiator] = 1;
        }
    }
};

}  // namespace

RunResult simulate_counts(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                          const RunOptions& options) {
    require(initial.num_states() == protocol.num_states(),
            "simulate_counts: configuration does not match protocol");
    const std::uint64_t n = initial.population_size();
    require(n >= 2, "simulate_counts: need at least two agents");
    require(n < (std::uint64_t{1} << 32), "simulate_counts: population must fit 32 bits");
    require(options.max_interactions > 0, "simulate_counts: max_interactions must be positive");

    const std::size_t num_states = protocol.num_states();
    const EffectTables eff(protocol);
    std::vector<std::uint64_t> counts = initial.counts();

    // rowdot[p] = sum_q eff[p][q] * counts[q]: the number of agents whose
    // state forms an effective ordered pair with an initiator in state p
    // (before the diagonal "needs two agents" correction).
    std::vector<std::int64_t> rowdot(num_states, 0);
    for (State p = 0; p < num_states; ++p) {
        std::int64_t dot = 0;
        const std::uint8_t* row = eff.eff_row.data() + static_cast<std::size_t>(p) * num_states;
        for (State q = 0; q < num_states; ++q)
            dot += static_cast<std::int64_t>(row[q]) * static_cast<std::int64_t>(counts[q]);
        rowdot[p] = dot;
    }

    // W = number of effective ordered agent pairs
    //   = sum_p c_p * (rowdot[p] - eff[p][p]); W == 0 iff the configuration
    // is silent.  Partial sums are bounded by n^2 + n, so uint64 is exact.
    const auto diag = [&](State p) -> std::int64_t {
        return eff.eff_row[static_cast<std::size_t>(p) * num_states + p];
    };
    const auto row_weight = [&](State p) -> std::uint64_t {
        return counts[p] * static_cast<std::uint64_t>(rowdot[p] - diag(p));
    };
    const auto total_effective_pairs = [&]() -> std::uint64_t {
        std::uint64_t w = 0;
        for (State p = 0; p < num_states; ++p)
            if (counts[p] != 0) w += row_weight(p);
        return w;
    };

    // Applies `delta` to the count of state s and keeps rowdot consistent.
    const auto adjust_count = [&](State s, std::int64_t delta) {
        counts[s] = static_cast<std::uint64_t>(static_cast<std::int64_t>(counts[s]) + delta);
        const std::uint8_t* col = eff.eff_col.data() + static_cast<std::size_t>(s) * num_states;
        for (State p = 0; p < num_states; ++p)
            rowdot[p] += static_cast<std::int64_t>(col[p]) * delta;
    };

    Rng rng(options.seed);
    const double total_pairs = static_cast<double>(n) * static_cast<double>(n - 1);
    const std::uint64_t window = options.stop_after_stable_outputs;

    RunResult result{CountConfiguration(num_states), StopReason::kBudget, 0, 0, 0, std::nullopt};
    std::uint64_t W = total_effective_pairs();
    bool silent = (W == 0);

    RunObserver* const observer = options.observer;
    std::uint64_t next_snapshot =
        observer ? options.snapshots.first_index() : SnapshotSchedule::kNever;
    // Emits the scheduled snapshots with index <= `limit` from the *current*
    // counts.  Clamping a geometric jump at snapshot boundaries reduces to
    // this: a scheduled index inside a run of null interactions sees the
    // counts unchanged since the last effective interaction, so the jump is
    // kept (no extra randomness is drawn — observed and unobserved runs are
    // bit-identical) and each boundary is stamped with its exact index.
    const auto emit_snapshots_through = [&](std::uint64_t limit) {
        while (next_snapshot <= limit) {
            observer->on_snapshot(next_snapshot, CountConfiguration::from_state_counts(counts));
            next_snapshot = options.snapshots.next_after(next_snapshot);
        }
    };
    std::chrono::steady_clock::time_point wall_start;
    if (observer) {
        wall_start = std::chrono::steady_clock::now();
        RunStartInfo info;
        info.engine = ObservedEngine::kCountBatch;
        info.population = n;
        info.num_states = num_states;
        info.seed = options.seed;
        info.max_interactions = options.max_interactions;
        info.initial = &initial;
        info.protocol = &protocol;
        observer->on_start(info);
    }

    while (!silent && result.interactions < options.max_interactions) {
        // Jump over the geometric run of null interactions preceding the
        // next effective one.
        const std::uint64_t skips =
            rng.geometric_skips(static_cast<double>(W) / total_pairs);

        if (window != 0 && result.last_output_change != 0) {
            // The agent-array loop tests output stability after every
            // interaction; the first index at which the test passes is
            // last_output_change + window.  If that index falls inside the
            // skipped nulls (which change nothing), stop exactly there.
            const std::uint64_t stop_at = result.last_output_change + window;
            if (stop_at <= result.interactions + skips &&
                stop_at <= options.max_interactions) {
                if (observer) {
                    emit_snapshots_through(stop_at);
                    if (stop_at > result.interactions)
                        observer->on_null_run(stop_at - result.interactions);
                }
                result.interactions = stop_at;
                result.stop_reason = StopReason::kStableOutputs;
                break;
            }
        }
        if (skips >= options.max_interactions - result.interactions) {
            // The next effective interaction lies beyond the budget.
            if (observer) {
                emit_snapshots_through(options.max_interactions);
                if (options.max_interactions > result.interactions)
                    observer->on_null_run(options.max_interactions - result.interactions);
            }
            result.interactions = options.max_interactions;
            break;
        }
        if (observer && skips != 0) {
            // The null run covers indices (interactions, interactions+skips].
            emit_snapshots_through(result.interactions + skips);
            observer->on_null_run(skips);
        }
        result.interactions += skips + 1;
        ++result.effective_interactions;

        // Sample the effective ordered pair (p, q) with probability
        // proportional to c_p * (c_q - [p == q]) over effective pairs.
        std::uint64_t u = rng.below(W);
        State p = 0;
        State q = 0;
        bool found = false;
        for (State pi = 0; pi < num_states && !found; ++pi) {
            if (counts[pi] == 0) continue;
            const std::uint64_t rw = row_weight(pi);
            if (u >= rw) {
                u -= rw;
                continue;
            }
            const std::uint8_t* row =
                eff.eff_row.data() + static_cast<std::size_t>(pi) * num_states;
            for (State qi = 0; qi < num_states; ++qi) {
                if (!row[qi]) continue;
                const std::uint64_t pair_weight =
                    counts[pi] * (counts[qi] - (pi == qi ? 1 : 0));
                if (u < pair_weight) {
                    p = pi;
                    q = qi;
                    found = true;
                    break;
                }
                u -= pair_weight;
            }
        }
        require(found, "simulate_counts: internal pair-sampling invariant violated");

        const StatePair next = protocol.apply_fast(p, q);
        const Symbol out_p = protocol.output_fast(p);
        const Symbol out_q = protocol.output_fast(q);
        const Symbol out_pn = protocol.output_fast(next.initiator);
        const Symbol out_qn = protocol.output_fast(next.responder);
        if (!((out_pn == out_p && out_qn == out_q) || (out_pn == out_q && out_qn == out_p))) {
            result.last_output_change = result.interactions;
            if (observer) observer->on_output_change(result.interactions);
        }

        adjust_count(p, -1);
        adjust_count(q, -1);
        adjust_count(next.initiator, +1);
        adjust_count(next.responder, +1);
        W = total_effective_pairs();
        silent = (W == 0);

        if (result.interactions >= next_snapshot) {
            // The effective interaction itself landed on a scheduled index;
            // its snapshot reflects the counts after the change.
            emit_snapshots_through(result.interactions);
        }

        if (window != 0 && result.last_output_change != 0 &&
            result.interactions - result.last_output_change >= window) {
            result.stop_reason = StopReason::kStableOutputs;
            break;
        }
    }

    if (silent) result.stop_reason = StopReason::kSilent;

    CountConfiguration final_config(num_states);
    for (State s = 0; s < num_states; ++s)
        if (counts[s] > 0) final_config.add(s, counts[s]);
    result.consensus = final_config.consensus_output(protocol);
    result.final_configuration = std::move(final_config);
    if (observer) {
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
        observer->on_stop(result, wall);
    }
    return result;
}

RunResult run_simulation(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                         const RunOptions& options) {
    switch (options.engine) {
        case SimulationEngine::kCountBatch:
            return simulate_counts(protocol, initial, options);
        case SimulationEngine::kAgentArray:
            break;
    }
    return simulate(protocol, initial, options);
}

}  // namespace popproto
