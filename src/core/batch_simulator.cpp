#include "core/batch_simulator.h"

#include <cstdint>
#include <vector>

#include "core/adaptive_simulator.h"
#include "core/collapsed_simulator.h"
#include "core/effect_tables.h"
#include "core/effective_pairs.h"
#include "core/require.h"
#include "core/rng.h"
#include "core/run_loop.h"

namespace popproto {

namespace {

/// The count-based multiset sampler (batch_simulator.h): pairs are drawn
/// from the count vector, runs of null interactions are proposed as exact
/// geometric jumps, and W == 0 detects silence exactly.
class CountBatchStepper {
public:
    static constexpr ObservedEngine kEngine = ObservedEngine::kCountBatch;
    static constexpr SilenceMode kSilenceMode = SilenceMode::kExact;
    static constexpr bool kGeometricSkips = true;
    static constexpr bool kSuperSteps = false;

    CountBatchStepper(const TabulatedProtocol& protocol, const CountConfiguration& initial)
        : protocol_(protocol),
          tracker_(protocol, initial.counts()),
          population_(initial.population_size()),
          total_pairs_(static_cast<double>(population_) *
                       static_cast<double>(population_ - 1)) {}

    std::uint64_t population() const { return population_; }

    bool is_silent() const { return tracker_.effective_pairs() == 0; }

    /// Exact W for the adaptive dispatcher's density monitor (run_loop.h).
    std::uint64_t effective_pairs() const { return tracker_.effective_pairs(); }

    std::uint64_t propose_skip(Rng& rng) {
        // Jump over the geometric run of null interactions preceding the
        // next effective one.
        return rng.geometric_skips(static_cast<double>(tracker_.effective_pairs()) /
                                   total_pairs_);
    }

    StepOutcome step(Rng& rng) {
        // Sample the effective ordered pair (p, q) with probability
        // proportional to c_p * (c_q - [p == q]) over effective pairs.
        const EffectTables& eff = tracker_.tables();
        const std::vector<std::uint64_t>& counts = tracker_.counts();
        const std::size_t num_states = eff.num_states;
        std::uint64_t u = rng.below(tracker_.effective_pairs());
        State p = 0;
        State q = 0;
        bool found = false;
        for (State pi = 0; pi < num_states && !found; ++pi) {
            if (counts[pi] == 0) continue;
            const std::uint64_t rw = tracker_.row_weight(pi);
            if (u >= rw) {
                u -= rw;
                continue;
            }
            const std::uint8_t* row =
                eff.eff_row.data() + static_cast<std::size_t>(pi) * num_states;
            for (State qi = 0; qi < num_states; ++qi) {
                if (!row[qi]) continue;
                const std::uint64_t pair_weight =
                    counts[pi] * (counts[qi] - (pi == qi ? 1 : 0));
                if (u < pair_weight) {
                    p = pi;
                    q = qi;
                    found = true;
                    break;
                }
                u -= pair_weight;
            }
        }
        ensure(found, "simulate_counts: internal pair-sampling invariant violated");

        const StatePair next = protocol_.apply_fast(p, q);
        const Symbol out_p = protocol_.output_fast(p);
        const Symbol out_q = protocol_.output_fast(q);
        const Symbol out_pn = protocol_.output_fast(next.initiator);
        const Symbol out_qn = protocol_.output_fast(next.responder);

        StepOutcome outcome;
        outcome.changed = true;  // effective by construction of the sampler
        outcome.output_changed =
            !((out_pn == out_p && out_qn == out_q) || (out_pn == out_q && out_qn == out_p));

        // The tracker keeps rowdot and W consistent in O(|Q|) per changed
        // state (see EffectivePairTracker::adjust_count).
        tracker_.adjust_count(p, -1);
        tracker_.adjust_count(q, -1);
        tracker_.adjust_count(next.initiator, +1);
        tracker_.adjust_count(next.responder, +1);
        return outcome;
    }

    CountConfiguration counts() const {
        return CountConfiguration::from_state_counts(tracker_.counts());
    }

    void save(RunCheckpoint& checkpoint) const { checkpoint.counts = tracker_.counts(); }

    void restore(const RunCheckpoint& checkpoint) {
        require(checkpoint.counts.size() == tracker_.counts().size(),
                "simulate_counts: checkpoint state-count mismatch");
        std::uint64_t total = 0;
        for (const std::uint64_t count : checkpoint.counts) total += count;
        require(total == population_, "simulate_counts: checkpoint population mismatch");
        tracker_.reset_counts(checkpoint.counts);
    }

private:
    const TabulatedProtocol& protocol_;
    EffectivePairTracker tracker_;
    std::uint64_t population_;
    double total_pairs_;
};

}  // namespace

RunResult simulate_counts(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                          const RunOptions& options) {
    require(initial.num_states() == protocol.num_states(),
            "simulate_counts: configuration does not match protocol");
    const std::uint64_t n = initial.population_size();
    require(n >= 2, "simulate_counts: need at least two agents");
    require(n < (std::uint64_t{1} << 32), "simulate_counts: population must fit 32 bits");
    require_engine_field(options, SimulationEngine::kCountBatch, "simulate_counts");

    CountBatchStepper stepper(protocol, initial);
    return run_loop(stepper, protocol, options, "simulate_counts");
}

RunResult run_simulation(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                         const RunOptions& options) {
    switch (options.engine) {
        case SimulationEngine::kCountBatch:
            return simulate_counts(protocol, initial, options);
        case SimulationEngine::kCollapsedBatch:
            return simulate_collapsed(protocol, initial, options);
        case SimulationEngine::kAgentArray:
            return simulate(protocol, initial, options);
        case SimulationEngine::kAdaptive:
            return simulate_adaptive(protocol, initial, options);
        case SimulationEngine::kAuto:
            break;
    }
    // A request for intra-run parallelism pins the collapsed engine: it is
    // the only one that honours threads > 1, and letting the size-based
    // choice route the request to a sequential engine would just trip the
    // kernel's never-ignore check.
    if (options.threads > 1) return simulate_collapsed(protocol, initial, options);
    // A checkpoint that carries an adaptive monitor section was written by
    // the adaptive dispatcher; kAuto resumes it there so the run keeps its
    // switching behaviour instead of silently pinning the segment engine.
    if (options.resume_from != nullptr && options.resume_from->adaptive)
        return simulate_adaptive(protocol, initial, options);
    // Size-based auto-selection (see the threshold constants in
    // simulator.h): the count engines need the multiset view anyway, so the
    // only inputs are the population and the documented crossover points.
    // At collapsed scale the within-run regime matters more than the size,
    // so those runs go to the phase-adaptive dispatcher.
    const std::uint64_t n = initial.population_size();
    if (n >= kAutoCollapsedThreshold) return simulate_adaptive(protocol, initial, options);
    if (n >= kAutoCountBatchThreshold) return simulate_counts(protocol, initial, options);
    return simulate(protocol, initial, options);
}

}  // namespace popproto
