// Population configurations (Sect. 3.1).
//
// A configuration assigns a state to each agent.  Because protocols on the
// complete interaction graph depend only on the multiset of states (agents
// are anonymous; Sect. 3.5), the canonical representation is a vector of
// per-state counts (CountConfiguration).  AgentConfiguration keeps explicit
// per-agent states and is used by the random scheduler and by interaction
// graphs where agent identity matters.

#ifndef POPPROTO_CORE_CONFIGURATION_H
#define POPPROTO_CORE_CONFIGURATION_H

#include <cstdint>
#include <optional>
#include <vector>

#include "core/protocol.h"

namespace popproto {

/// Multiset configuration: counts_[q] agents are in state q.
class CountConfiguration {
public:
    /// Empty population over `num_states` states.
    explicit CountConfiguration(std::size_t num_states);

    /// Configuration I(x) for the input assignment listing each agent's
    /// input symbol (order is irrelevant).
    static CountConfiguration from_inputs(const Protocol& protocol,
                                          const std::vector<Symbol>& inputs);

    /// Configuration I(x) for the symbol-count input convention: agent counts
    /// per input symbol (Sect. 3.4, "Domain Z^k").
    static CountConfiguration from_input_counts(const Protocol& protocol,
                                                const std::vector<std::uint64_t>& symbol_counts);

    /// Configuration holding counts[q] agents in state q (a raw count vector
    /// adopted as-is, e.g. an engine's working vector at a snapshot).
    static CountConfiguration from_state_counts(std::vector<std::uint64_t> counts);

    /// Total number of agents n.
    std::uint64_t population_size() const { return population_; }

    std::size_t num_states() const { return counts_.size(); }

    std::uint64_t count(State q) const;

    /// Adds `agents` agents in state `q`.
    void add(State q, std::uint64_t agents = 1);

    /// Removes `agents` agents in state `q`; throws if fewer are present.
    void remove(State q, std::uint64_t agents = 1);

    /// Applies one interaction between an initiator in state `p` and a
    /// responder in state `q`.  Throws if the required agents are absent
    /// (including needing two agents when p == q).
    void apply_interaction(const Protocol& protocol, State p, State q);

    /// Number of agents per output symbol under O.
    std::vector<std::uint64_t> output_counts(const Protocol& protocol) const;

    /// The common output symbol if every agent agrees (all-agents output
    /// convention), otherwise nullopt.  Empty populations return nullopt.
    std::optional<Symbol> consensus_output(const Protocol& protocol) const;

    /// True iff no available interaction changes the *multiset* of states:
    /// for every ordered pair (p, q) of present states (p == q requiring
    /// count >= 2), delta(p, q) is (p, q) or (q, p).  Since agents are
    /// anonymous, a silent configuration can never evolve further and is in
    /// particular output-stable.
    bool is_silent(const Protocol& protocol) const;

    /// Raw counts, indexable by State.
    const std::vector<std::uint64_t>& counts() const { return counts_; }

    friend bool operator==(const CountConfiguration&, const CountConfiguration&) = default;

private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t population_ = 0;
};

/// FNV-1a hash over the count vector, for use in unordered containers during
/// reachability exploration.
struct CountConfigurationHash {
    std::size_t operator()(const CountConfiguration& config) const noexcept;
};

/// Explicit per-agent configuration.
class AgentConfiguration {
public:
    AgentConfiguration() = default;

    /// One agent per entry of `inputs`, in order (string input convention).
    static AgentConfiguration from_inputs(const Protocol& protocol,
                                          const std::vector<Symbol>& inputs);

    /// Expands a multiset configuration into an (arbitrary-order) agent list.
    static AgentConfiguration from_counts(const CountConfiguration& config);

    /// Adopts an explicit per-agent state vector (stepper/checkpoint
    /// interop); every state must be < num_states.
    static AgentConfiguration from_states(std::vector<State> states, std::size_t num_states);

    std::size_t size() const { return states_.size(); }

    State state(std::size_t agent) const;
    void set_state(std::size_t agent, State q);

    /// Applies delta to the ordered agent pair (initiator, responder).
    /// Returns true iff either agent's state changed.
    bool apply_interaction(const Protocol& protocol, std::size_t initiator,
                           std::size_t responder);

    /// Collapses to the multiset representation.
    CountConfiguration to_counts(std::size_t num_states) const;

    const std::vector<State>& states() const { return states_; }

private:
    std::vector<State> states_;
};

}  // namespace popproto

#endif  // POPPROTO_CORE_CONFIGURATION_H
