// Flat-table representation of a protocol.
//
// TabulatedProtocol stores I, O, and delta as dense arrays so that the hot
// simulation loops are single array lookups.  It can be built directly from
// explicit tables (the way most concrete protocols in this library are
// constructed) or by tabulating any other Protocol.

#ifndef POPPROTO_CORE_TABULATED_PROTOCOL_H
#define POPPROTO_CORE_TABULATED_PROTOCOL_H

#include <memory>
#include <string>
#include <vector>

#include "core/protocol.h"

namespace popproto {

/// One ordered state pair whose interaction changes the *multiset* {p, q}
/// (identities delta(p,q) = (p,q) and swaps delta(p,q) = (q,p) are null),
/// together with the resulting pair.  These are exactly the transitions
/// that contribute to the batch engine's effective-pair count W and to the
/// mean-field drift field (src/meanfield): every other pair leaves both
/// the count vector and the density vector unchanged.
struct EffectiveTransition {
    State initiator = 0;
    State responder = 0;
    StatePair result{0, 0};
};

class TabulatedProtocol final : public Protocol {
public:
    /// Raw tables; see field comments for the required shapes.
    struct Tables {
        /// initial[x] = I(x); size |X|.
        std::vector<State> initial;
        /// output[q] = O(q); size |Q|.
        std::vector<Symbol> output;
        /// delta[p * |Q| + q] = delta(p, q); size |Q|^2.
        std::vector<StatePair> delta;
        /// Number of output symbols |Y| (outputs must lie in [0, |Y|)).
        std::size_t num_output_symbols = 0;
        /// Optional display names; empty vectors fall back to defaults.
        std::vector<std::string> state_names;
        std::vector<std::string> input_names;
        std::vector<std::string> output_names;
    };

    /// Validates and adopts `tables`.  Throws std::invalid_argument on
    /// malformed shapes or out-of-range entries.
    explicit TabulatedProtocol(Tables tables);

    /// Tabulates an arbitrary protocol into flat form.
    static std::unique_ptr<TabulatedProtocol> tabulate(const Protocol& protocol);

    std::size_t num_states() const override { return tables_.output.size(); }
    std::size_t num_input_symbols() const override { return tables_.initial.size(); }
    std::size_t num_output_symbols() const override { return tables_.num_output_symbols; }
    State initial_state(Symbol x) const override;
    Symbol output(State q) const override;
    StatePair apply(State initiator, State responder) const override;
    std::string state_name(State q) const override;
    std::string input_name(Symbol x) const override;
    std::string output_name(Symbol y) const override;

    /// Unchecked delta lookup for hot loops.  Precondition: both states are
    /// in range (guaranteed for states produced by this protocol).
    StatePair apply_fast(State initiator, State responder) const noexcept {
        return tables_.delta[static_cast<std::size_t>(initiator) * num_states_ + responder];
    }

    /// Unchecked output lookup for hot loops.
    Symbol output_fast(State q) const noexcept { return tables_.output[q]; }

    /// All multiset-changing ordered state pairs in row-major
    /// (initiator, responder) order.  One pass over the delta table; the
    /// batch engine's effect tables and the mean-field drift quadratic
    /// form are both assembled from this list.
    std::vector<EffectiveTransition> effective_transitions() const;

private:
    Tables tables_;
    std::size_t num_states_ = 0;
};

}  // namespace popproto

#endif  // POPPROTO_CORE_TABULATED_PROTOCOL_H
