#include "core/protocol_io.h"

#include <sstream>

#include "core/require.h"

namespace popproto {

std::string serialize_protocol(const TabulatedProtocol& protocol) {
    std::ostringstream out;
    out << "popproto-protocol 1\n";
    out << "sizes " << protocol.num_states() << " " << protocol.num_input_symbols() << " "
        << protocol.num_output_symbols() << "\n";
    for (State q = 0; q < protocol.num_states(); ++q)
        out << "state " << q << " " << protocol.state_name(q) << "\n";
    for (Symbol x = 0; x < protocol.num_input_symbols(); ++x)
        out << "input " << x << " " << protocol.initial_state(x) << " "
            << protocol.input_name(x) << "\n";
    for (Symbol y = 0; y < protocol.num_output_symbols(); ++y)
        out << "outname " << y << " " << protocol.output_name(y) << "\n";
    for (State q = 0; q < protocol.num_states(); ++q)
        out << "out " << q << " " << protocol.output_fast(q) << "\n";
    for (State p = 0; p < protocol.num_states(); ++p) {
        for (State q = 0; q < protocol.num_states(); ++q) {
            const StatePair next = protocol.apply_fast(p, q);
            if (next.initiator == p && next.responder == q) continue;
            out << "delta " << p << " " << q << " " << next.initiator << " " << next.responder
                << "\n";
        }
    }
    out << "end\n";
    return out.str();
}

namespace {

[[noreturn]] void parse_fail(std::size_t line_number, const std::string& message) {
    throw std::invalid_argument("deserialize_protocol: line " + std::to_string(line_number) +
                                ": " + message);
}

/// Remainder of the stream with leading whitespace stripped.
std::string rest_of_line(std::istringstream& in) {
    std::string rest;
    std::getline(in, rest);
    const std::size_t start = rest.find_first_not_of(" \t");
    return start == std::string::npos ? std::string() : rest.substr(start);
}

}  // namespace

std::unique_ptr<TabulatedProtocol> deserialize_protocol(const std::string& text) {
    std::istringstream stream(text);
    std::string line;
    std::size_t line_number = 0;

    bool saw_header = false;
    bool saw_sizes = false;
    bool saw_end = false;
    std::size_t num_states = 0;
    TabulatedProtocol::Tables tables;

    while (std::getline(stream, line)) {
        ++line_number;
        std::istringstream in(line);
        std::string directive;
        if (!(in >> directive) || directive[0] == '#') continue;

        if (!saw_header) {
            int version = 0;
            if (directive != "popproto-protocol" || !(in >> version) || version != 1)
                parse_fail(line_number, "expected header 'popproto-protocol 1'");
            saw_header = true;
            continue;
        }
        if (directive == "sizes") {
            std::size_t inputs = 0;
            std::size_t outputs = 0;
            if (!(in >> num_states >> inputs >> outputs) || num_states == 0 || inputs == 0 ||
                outputs == 0)
                parse_fail(line_number, "malformed sizes");
            tables.num_output_symbols = outputs;
            tables.output.assign(num_states, 0);
            tables.state_names.assign(num_states, "");
            tables.initial.assign(inputs, 0);
            tables.input_names.assign(inputs, "");
            tables.output_names.assign(outputs, "");
            // Identity (null) delta by default.
            tables.delta.resize(num_states * num_states);
            for (State p = 0; p < num_states; ++p)
                for (State q = 0; q < num_states; ++q)
                    tables.delta[static_cast<std::size_t>(p) * num_states + q] = {p, q};
            for (State q = 0; q < num_states; ++q)
                tables.state_names[q] = "q" + std::to_string(q);
            saw_sizes = true;
            continue;
        }
        if (!saw_sizes) parse_fail(line_number, "directive before 'sizes'");

        if (directive == "state") {
            std::size_t index = 0;
            if (!(in >> index) || index >= num_states)
                parse_fail(line_number, "state index out of range");
            tables.state_names[index] = rest_of_line(in);
        } else if (directive == "input") {
            std::size_t index = 0;
            State initial = 0;
            if (!(in >> index >> initial) || index >= tables.initial.size() ||
                initial >= num_states)
                parse_fail(line_number, "malformed input directive");
            tables.initial[index] = initial;
            tables.input_names[index] = rest_of_line(in);
        } else if (directive == "outname") {
            std::size_t index = 0;
            if (!(in >> index) || index >= tables.output_names.size())
                parse_fail(line_number, "output name index out of range");
            tables.output_names[index] = rest_of_line(in);
        } else if (directive == "out") {
            std::size_t state = 0;
            Symbol output = 0;
            if (!(in >> state >> output) || state >= num_states ||
                output >= tables.num_output_symbols)
                parse_fail(line_number, "malformed out directive");
            tables.output[state] = output;
        } else if (directive == "delta") {
            State p = 0;
            State q = 0;
            State rp = 0;
            State rq = 0;
            if (!(in >> p >> q >> rp >> rq) || p >= num_states || q >= num_states ||
                rp >= num_states || rq >= num_states)
                parse_fail(line_number, "malformed delta directive");
            tables.delta[static_cast<std::size_t>(p) * num_states + q] = {rp, rq};
        } else if (directive == "end") {
            saw_end = true;
            break;
        } else {
            parse_fail(line_number, "unknown directive '" + directive + "'");
        }
    }
    if (!saw_header) parse_fail(line_number, "missing header");
    if (!saw_sizes) parse_fail(line_number, "missing sizes");
    if (!saw_end) parse_fail(line_number, "missing 'end'");
    // Fill defaulted names.
    for (Symbol x = 0; x < tables.input_names.size(); ++x)
        if (tables.input_names[x].empty()) tables.input_names[x] = "x" + std::to_string(x);
    for (Symbol y = 0; y < tables.output_names.size(); ++y)
        if (tables.output_names[y].empty()) tables.output_names[y] = "y" + std::to_string(y);
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

}  // namespace popproto
