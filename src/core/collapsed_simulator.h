// Collapsed super-step simulation engine: amortized sub-constant time per
// interaction via multinomial batching.
//
// The count-batch engine (batch_simulator.h) pays O(1) per skipped null
// interaction but still O(|Q|) per *effective* one, and the paper's
// randomized results need runs of 10^9..10^12 interactions (Theorem 8's
// O(n^2 log n) Presburger bound, Theorem 9's Theta(n^k) epochs) with dense
// phases where most interactions are effective.  This engine collapses
// whole *runs* of interactions into one count update:
//
//  * Super-step length.  Ordered pairs of distinct agents are drawn
//    uniformly; as long as consecutive pairs touch pairwise-disjoint
//    agents, their effects commute and the aggregate is a without-
//    replacement sample of the count vector.  The length L of the maximal
//    collision-free run has the birthday-problem law
//        P(L >= t) = prod_{i<t} (n-2i)(n-2i-1) / (n(n-1)),
//    with E[L] ~ 0.63 sqrt(n); the survival table depends only on n, is
//    built once, and one uniform01 + binary search samples L exactly.
//  * Batch assignment.  The L initiator states form a multivariate
//    hypergeometric sample A of the counts (cascade of exact
//    Rng::hypergeometric splits), the responder states B a second cascade
//    over the remainder, and the initiator-responder matching a third
//    cascade — O(|Q|^2) draws total.  Applying delta to every matched pair
//    type at once is one O(|Q|^2) count update for ~sqrt(n) interactions:
//    amortized O(|Q|^2 / sqrt(n)) per interaction.
//  * The colliding interaction.  The pair that terminated the run involves
//    at least one already-touched agent; it is resolved individually from
//    the post-batch touched multiset T (|T| = 2L) and the untouched
//    remainder U, with case weights TT : TU : UT = 2L(2L-1) : 2L(n-2L) :
//    (n-2L)2L.
//
// Equivalence contract (sharper than the cross-engine one of PR 2): the
// distribution of trajectories and RunResults is identical to `simulate` /
// `simulate_counts`, but equivalence is *distribution-level only* — even
// against itself across observation setups.  The run-loop kernel clamps a
// super-step at snapshot, checkpoint, stable-output-window, and
// silence-check boundaries (exactly: the first m pairs of a collision-free
// run of length >= m are themselves a collision-free batch of length m, and
// the count chain is Markov), so boundary *placement* steers where the RNG
// stream is spent, and the same seed yields different (equally valid)
// trajectories under different schedules.  Checkpoint/resume remains
// bit-identical because a resumed run reconstructs the identical boundary
// sequence: suspend-at-k + resume reproduces the checkpointed run exactly.
//
// Bookkeeping coarsenings (both documented in DESIGN.md):
//  * last_output_change is stamped at the end of the super-step containing
//    the change, not at the exact interaction inside the batch.
//  * Silence (W == 0, exact as in the count-batch engine) is detected at
//    super-step granularity, so the reported kSilent interaction index may
//    overshoot the exact onset by up to one super-step (< ~2 sqrt(n)); the
//    final configuration is unaffected (a silent multiset is frozen).
//
// Cost model: O(|Q|^2 + sqrt(n)-ish sampler walks) per ~0.63 sqrt(n)
// interactions.  Prefer it for dense phases at large n (>= 2^20); the
// count-batch engine remains better on sparse tails, where its geometric
// null skip crosses n^2/W interactions in O(1) while a super-step only
// crosses ~sqrt(n) (see README's engine table and bench_collapsed).
//
// Intra-run parallelism (RunOptions::threads > 1, DESIGN.md "Intra-run
// parallelism").  A super-step's batch is exchangeable: the 2L touched
// agents are a uniform without-replacement sample, so splitting the L pairs
// into K shards — pool sizes carved by exact multivariate-hypergeometric
// splits on the parent stream, each shard's initiator draw + matching run
// on its own 2^128-jump child stream (Rng::split) — and merging the
// per-shard deltas in fixed shard order yields exactly the serial law for
// every K.  The colliding interaction and the effective-pair recount stay
// on the parent stream after the merge.  Determinism contract: a fixed
// (seed, threads) pair is bit-identical across repetitions, machines, and
// pool schedules (shard k always consumes child stream k regardless of
// which worker runs it); different thread counts give different —
// distribution-identical — trajectories.  Checkpoints record the K child
// streams (RunCheckpoint::shard_rngs) under the distinct engine tag
// "parallel_collapsed", so a resume must use the same thread count and
// serial/parallel checkpoints mutually reject.  threads == 1 *is* the
// serial engine; threads == 0 resolves to the hardware concurrency.

#ifndef POPPROTO_CORE_COLLAPSED_SIMULATOR_H
#define POPPROTO_CORE_COLLAPSED_SIMULATOR_H

#include "core/configuration.h"
#include "core/simulator.h"
#include "core/tabulated_protocol.h"

namespace popproto {

/// Simulates `protocol` from `initial` under uniform random pairing using
/// the collapsed super-step engine.  Requires a population of at least 2
/// and fewer than 2^32 agents, options.engine in {kAuto, kCollapsedBatch},
/// and options.threads <= 4096.  Same options and result contract as
/// simulate_counts (silence_check_period ignored; multiset-wise
/// effective_interactions and last_output_change), with the super-step
/// coarsenings described above.  threads > 1 selects the sharded parallel
/// variant (see the header comment); the RunResult::engine field reports
/// which variant ran.
RunResult simulate_collapsed(const TabulatedProtocol& protocol,
                             const CountConfiguration& initial, const RunOptions& options);

}  // namespace popproto

#endif  // POPPROTO_CORE_COLLAPSED_SIMULATOR_H
