#include "core/adaptive_simulator.h"

#include <chrono>
#include <optional>
#include <utility>

#include "core/batch_simulator.h"
#include "core/collapsed_simulator.h"
#include "core/effective_pairs.h"
#include "core/engine_monitor.h"
#include "core/require.h"
#include "core/run_loop.h"
#include "telemetry/telemetry.h"

namespace popproto {

namespace {

/// The driver's checkpoint sink around the user's: periodic / pause / stop
/// checkpoints pass through untouched, but the checkpoint the kernel takes
/// when the monitor fires is the *transfer* — it belongs to the driver, not
/// the user's checkpoint stream (the user-visible stream stays identical to
/// a manually spliced run's).
class SwitchCaptureSink final : public CheckpointSink {
public:
    SwitchCaptureSink(const EngineSwitchMonitor& monitor, CheckpointSink* user)
        : monitor_(monitor), user_(user) {}

    void on_checkpoint(const RunCheckpoint& checkpoint) override {
        if (monitor_.pending_switch()) {
            fire_ = checkpoint;
            return;
        }
        if (user_ != nullptr) user_->on_checkpoint(checkpoint);
    }

    std::optional<RunCheckpoint> take_fire() { return std::exchange(fire_, std::nullopt); }

private:
    const EngineSwitchMonitor& monitor_;
    CheckpointSink* const user_;
    std::optional<RunCheckpoint> fire_;
};

/// The driver's observer around the user's: exactly one on_start (labelled
/// kAdaptive) for the whole run, per-segment trajectory events forwarded
/// as-is, and the per-segment on_stop suppressed — the driver emits the
/// single final on_stop itself, with the merged result and total wall time.
class SegmentObserver final : public RunObserver {
public:
    explicit SegmentObserver(RunObserver& user) : user_(user) {}

    void on_start(const RunStartInfo& info) override {
        if (started_) return;
        started_ = true;
        RunStartInfo adaptive_info = info;
        adaptive_info.engine = ObservedEngine::kAdaptive;
        user_.on_start(adaptive_info);
    }

    void on_snapshot(std::uint64_t interaction_index,
                     const CountConfiguration& configuration) override {
        user_.on_snapshot(interaction_index, configuration);
    }

    void on_output_change(std::uint64_t interaction_index) override {
        user_.on_output_change(interaction_index);
    }

    void on_null_run(std::uint64_t length) override { user_.on_null_run(length); }

    void on_silence_check(std::uint64_t interaction_index, bool silent) override {
        user_.on_silence_check(interaction_index, silent);
    }

    void on_stop(const RunResult&, double) override {}

private:
    RunObserver& user_;
    bool started_ = false;
};

}  // namespace

RunResult simulate_adaptive(const TabulatedProtocol& protocol,
                            const CountConfiguration& initial, const RunOptions& options) {
    require(initial.num_states() == protocol.num_states(),
            "simulate_adaptive: configuration does not match protocol");
    const std::uint64_t n = initial.population_size();
    require(n >= 2, "simulate_adaptive: need at least two agents");
    require(n < (std::uint64_t{1} << 32), "simulate_adaptive: population must fit 32 bits");
    require_engine_field(options, SimulationEngine::kAdaptive, "simulate_adaptive");
    require(options.threads <= 1,
            "simulate_adaptive: the adaptive dispatcher is serial; threads > 1 pins the "
            "collapsed engine (run_simulation)");
    require(!options.fluid_assist || options.fluid_hook,
            "simulate_adaptive: fluid_assist requires a fluid_hook "
            "(make_fluid_assist_hook in meanfield/fluid_assist.h)");
    require(options.switch_monitor == nullptr,
            "simulate_adaptive: switch_monitor is internal driver plumbing; leave it null");

    const std::uint64_t budget = resolved_budget(options, n);

    // The working cursor: the checkpoint the next segment resumes from
    // (empty for the first segment of a fresh run), plus the monitor that
    // decides when to splice.
    std::optional<RunCheckpoint> cursor;
    std::optional<EngineSwitchMonitor> monitor;
    ObservedEngine current = ObservedEngine::kCountBatch;

    if (options.resume_from != nullptr) {
        cursor = *options.resume_from;
        require(cursor->engine == ObservedEngine::kCountBatch ||
                    cursor->engine == ObservedEngine::kCollapsed,
                std::string("simulate_adaptive: cannot resume a ") +
                    observed_engine_name(cursor->engine) + " checkpoint");
        current = cursor->engine;
        monitor.emplace(n, current, options.adaptive);
        if (cursor->adaptive) {
            monitor->restore(cursor->adaptive_switches, cursor->adaptive_last_switch,
                             cursor->adaptive_next_eval);
        } else {
            // A static-engine checkpoint adopted mid-run: start monitoring
            // one period past the cut.
            monitor->restore(0, 0, cursor->interactions + monitor->eval_period());
        }
    } else {
        // Entry engine from the initial density: the same x = rho * E[L]
        // signal the monitor polls, evaluated on the initial counts — one
        // pass over the protocol's effective-transition list, no RNG draws,
        // no allocations (the probe is priced by bench_adaptive's sparse
        // control, whose whole run is microseconds).
        EngineSwitchMonitor probe(n, ObservedEngine::kCountBatch, options.adaptive);
        std::uint64_t initial_pairs = 0;
        for (const EffectiveTransition& t : protocol.effective_transitions())
            initial_pairs += initial.counts()[t.initiator] *
                             (initial.counts()[t.responder] -
                              (t.initiator == t.responder ? 1 : 0));
        current = probe.signal(initial_pairs) >= probe.enter_collapsed()
                      ? ObservedEngine::kCollapsed
                      : ObservedEngine::kCountBatch;
        monitor.emplace(n, current, options.adaptive);

        // Mean-field fast-forward (opt-in, dense entries only): skip the
        // deterministic bulk of the transient and re-enter the stochastic
        // simulation near the predicted sparse tail.
        if (options.fluid_assist && current == ObservedEngine::kCollapsed) {
            std::optional<RunCheckpoint> assist =
                options.fluid_hook(protocol, initial, options);
            if (assist.has_value()) {
                require(assist->engine == ObservedEngine::kCountBatch ||
                            assist->engine == ObservedEngine::kCollapsed,
                        "simulate_adaptive: fluid_hook must produce a count-engine "
                        "checkpoint");
                require(assist->population == n && assist->num_states == protocol.num_states(),
                        "simulate_adaptive: fluid_hook checkpoint does not match the run");
                require(assist->interactions <= budget,
                        "simulate_adaptive: fluid_hook fast-forwarded past the "
                        "interaction budget");
                cursor = std::move(assist);
                current = cursor->engine;
                monitor.emplace(n, current, options.adaptive);
                monitor->restore(0, 0, cursor->interactions + monitor->eval_period());
            }
        }
    }

    telemetry::RunTelemetryCollector* const collector =
        telemetry::kCompiledIn ? options.telemetry : nullptr;
    if (collector)
        collector->begin_adaptive_run(n, 1, cursor.has_value() ? cursor->interactions : 0);

    SwitchCaptureSink sink(*monitor, options.checkpoint_sink);
    std::optional<SegmentObserver> segment_observer;
    if (options.observer != nullptr) segment_observer.emplace(*options.observer);
    const auto wall_start = std::chrono::steady_clock::now();

    RunResult result{CountConfiguration(protocol.num_states()), StopReason::kBudget, 0, 0, 0,
                     std::nullopt};
    while (true) {
        RunOptions segment = options;
        segment.engine = current == ObservedEngine::kCollapsed
                             ? SimulationEngine::kCollapsedBatch
                             : SimulationEngine::kCountBatch;
        segment.threads = 1;
        segment.resume_from = cursor.has_value() ? &*cursor : nullptr;
        segment.checkpoint_sink = &sink;
        segment.switch_monitor = &*monitor;
        segment.observer = segment_observer.has_value() ? &*segment_observer : nullptr;
        segment.fluid_assist = false;
        segment.fluid_hook = nullptr;

        result = current == ObservedEngine::kCollapsed
                     ? simulate_collapsed(protocol, initial, segment)
                     : simulate_counts(protocol, initial, segment);

        // No pending switch: the segment ended the run for real (silence,
        // budget, stable outputs, or a user pause/stop) — finalize.
        if (!monitor->pending_switch()) break;

        // The monitor fired: the kernel paused at a super-step / skip
        // boundary and the sink holds the transfer checkpoint.  Splice.
        std::optional<RunCheckpoint> fire = sink.take_fire();
        ensure(fire.has_value(),
               "simulate_adaptive: monitor fired without a transfer checkpoint");
        const std::uint64_t switch_index = fire->interactions;
        EngineSwitchInfo info;
        info.interactions = switch_index;
        info.from = current;
        info.to = monitor->pending_target();
        info.signal = monitor->last_signal();
        info.enter_threshold = monitor->enter_collapsed();
        info.exit_threshold = monitor->exit_collapsed();
        monitor->commit_switch(switch_index);
        info.switch_index = monitor->switches();

        {
            const telemetry::ScopedTimer timer(collector,
                                               telemetry::Phase::kEngineSwitch);
            cursor = std::move(fire);
            transfer_checkpoint_engine(*cursor, monitor->current());
            // take_checkpoint stamped the pre-commit monitor state; refresh
            // the switch bookkeeping (next_eval is already post-poll).
            cursor->adaptive_switches = monitor->switches();
            cursor->adaptive_last_switch = monitor->last_switch();
        }
        if (options.observer != nullptr) options.observer->on_engine_switch(info);
        current = monitor->current();
    }

    result.engine = ObservedEngine::kAdaptive;
    if (collector) {
        collector->finish_adaptive_run(result.interactions, result.effective_interactions);
        result.telemetry = collector->share();
    }
    if (options.observer != nullptr)
        options.observer->on_stop(result, run_loop_detail::seconds_since(wall_start));
    return result;
}

}  // namespace popproto
