// Exact effective-ordered-pair bookkeeping over a state multiset.
//
// W = |{ ordered agent pairs (a, b) whose interaction changes the state
// multiset }| = sum_p c_p * (rowdot[p] - eff[p][p]), with rowdot[p] =
// sum_q eff[p][q] * c_q.  W == 0 is the exact silence predicate, W / n(n-1)
// the effective-interaction fraction that both the count-batch engine's
// geometric null skips and the phase-adaptive engine monitor consume.
//
// This tracker is the bookkeeping half of the count-batch stepper
// (batch_simulator.cpp), factored out so that the exact-silence PairStepper
// variant (interaction_model.h) and the adaptive dispatcher
// (adaptive_simulator.cpp) maintain W with the same O(|Q|)-per-changed-state
// incremental update instead of re-deriving it.

#ifndef POPPROTO_CORE_EFFECTIVE_PAIRS_H
#define POPPROTO_CORE_EFFECTIVE_PAIRS_H

#include <cstdint>
#include <vector>

#include "core/effect_tables.h"
#include "core/tabulated_protocol.h"

namespace popproto {

class EffectivePairTracker {
public:
    EffectivePairTracker(const TabulatedProtocol& protocol, std::vector<std::uint64_t> counts)
        : eff_(protocol), counts_(std::move(counts)) {
        rebuild();
    }

    /// W: the number of effective ordered agent pairs (0 iff silent).
    std::uint64_t effective_pairs() const { return W_; }

    const std::vector<std::uint64_t>& counts() const { return counts_; }
    const EffectTables& tables() const { return eff_; }

    /// c_p * (rowdot[p] - eff[p][p]): state p's contribution to W.
    std::uint64_t row_weight(State p) const {
        return counts_[p] * static_cast<std::uint64_t>(rowdot_[p] - diag(p));
    }

    std::int64_t diag(State p) const {
        return eff_.eff_row[static_cast<std::size_t>(p) * eff_.num_states + p];
    }

    /// Applies `delta` to the count of state s and keeps rowdot *and W_*
    /// consistent.  W changes only through the rows the column touches, so
    /// maintaining it here is O(|Q|) per changed state instead of the O(|Q|)
    /// full resummation per *step* that a recount would cost — a step
    /// touches at most 4 states, most of whose columns are sparse.
    ///
    /// With c = counts_[s], R = rowdot_[s], e = eff[s][s] all read *before*
    /// the update, and colsum = sum_p counts_[p] * eff[p][s] (also pre-
    /// update), the exact integer delta is
    ///
    ///   dW = delta * (colsum - c * e)      (rows p != s: c_p * eff[p][s])
    ///      + delta * (R - e)              (row s: its weight gains delta
    ///      + delta * e * (c + delta)       copies of the old row sum, and
    ///                                      the diagonal term re-enters with
    ///                                      the new count)
    ///
    /// |dW| <= 4n, so the int64 arithmetic is exact; W itself can exceed
    /// int64 (W <= n(n-1) with n < 2^32), so the signed delta is applied to
    /// the uint64 accumulator via two's-complement wraparound.
    void adjust_count(State s, std::int64_t delta) {
        const std::uint8_t* col =
            eff_.eff_col.data() + static_cast<std::size_t>(s) * eff_.num_states;
        const auto c = static_cast<std::int64_t>(counts_[s]);
        const std::int64_t rowsum = rowdot_[s];
        const std::int64_t e = diag(s);
        std::int64_t colsum = 0;
        for (State p = 0; p < eff_.num_states; ++p) {
            colsum += static_cast<std::int64_t>(col[p]) * static_cast<std::int64_t>(counts_[p]);
            rowdot_[p] += static_cast<std::int64_t>(col[p]) * delta;
        }
        counts_[s] = static_cast<std::uint64_t>(c + delta);
        const std::int64_t dw =
            delta * (colsum - c * e) + delta * (rowsum - e) + delta * e * (c + delta);
        W_ += static_cast<std::uint64_t>(dw);
    }

    /// Replaces the count vector wholesale (checkpoint restore) and rebuilds
    /// rowdot and W from scratch.
    void reset_counts(std::vector<std::uint64_t> counts) {
        counts_ = std::move(counts);
        rebuild();
    }

private:
    // rowdot[p] = sum_q eff[p][q] * counts[q]: the number of agents whose
    // state forms an effective ordered pair with an initiator in state p
    // (before the diagonal "needs two agents" correction).
    void rebuild() {
        const std::size_t num_states = eff_.num_states;
        rowdot_.assign(num_states, 0);
        for (State p = 0; p < num_states; ++p) {
            std::int64_t dot = 0;
            const std::uint8_t* row =
                eff_.eff_row.data() + static_cast<std::size_t>(p) * num_states;
            for (State q = 0; q < num_states; ++q)
                dot += static_cast<std::int64_t>(row[q]) * static_cast<std::int64_t>(counts_[q]);
            rowdot_[p] = dot;
        }
        // Partial sums are bounded by n^2 + n, so uint64 is exact.
        std::uint64_t w = 0;
        for (State p = 0; p < num_states; ++p)
            if (counts_[p] != 0) w += row_weight(p);
        W_ = w;
    }

    EffectTables eff_;
    std::vector<std::uint64_t> counts_;
    std::vector<std::int64_t> rowdot_;
    std::uint64_t W_ = 0;
};

}  // namespace popproto

#endif  // POPPROTO_CORE_EFFECTIVE_PAIRS_H
