// Precomputed per-protocol classification of ordered state pairs, shared by
// the count-based engines (batch_simulator.cpp, collapsed_simulator.cpp).
//
// eff_row[p * Q + q] is 1 iff delta(p, q) changes the multiset {p, q}
// (identities and swaps are null); eff_col is its transpose so that the
// rowdot update for one changed state reads a contiguous column.

#ifndef POPPROTO_CORE_EFFECT_TABLES_H
#define POPPROTO_CORE_EFFECT_TABLES_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/tabulated_protocol.h"

namespace popproto {

struct EffectTables {
    std::vector<std::uint8_t> eff_row;
    std::vector<std::uint8_t> eff_col;
    std::size_t num_states;

    explicit EffectTables(const TabulatedProtocol& protocol)
        : eff_row(protocol.num_states() * protocol.num_states(), 0),
          eff_col(protocol.num_states() * protocol.num_states(), 0),
          num_states(protocol.num_states()) {
        for (const EffectiveTransition& t : protocol.effective_transitions()) {
            eff_row[static_cast<std::size_t>(t.initiator) * num_states + t.responder] = 1;
            eff_col[static_cast<std::size_t>(t.responder) * num_states + t.initiator] = 1;
        }
    }

    /// 1 iff delta(p, q) changes the multiset {p, q}.
    std::uint8_t effective(State p, State q) const {
        return eff_row[static_cast<std::size_t>(p) * num_states + q];
    }
};

}  // namespace popproto

#endif  // POPPROTO_CORE_EFFECT_TABLES_H
