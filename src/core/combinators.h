// Generic protocol transformations.
//
// make_product_protocol is the parallel composition of Lemma 3: run two
// protocols with a common input alphabet side by side and combine their
// outputs with an arbitrary function, which proves closure of stably
// computable predicates under Boolean operations.  make_output_mapped
// re-labels outputs (used for negation and other post-processing).

#ifndef POPPROTO_CORE_COMBINATORS_H
#define POPPROTO_CORE_COMBINATORS_H

#include <functional>
#include <memory>

#include "core/tabulated_protocol.h"

namespace popproto {

/// Parallel composition (Lemma 3).  Both protocols must have the same input
/// alphabet size.  The composite state set is Q_a x Q_b; delta acts
/// componentwise and the output of (q_a, q_b) is
/// combine(O_a(q_a), O_b(q_b)), which must lie in [0, num_output_symbols).
std::unique_ptr<TabulatedProtocol> make_product_protocol(
    const Protocol& a, const Protocol& b,
    const std::function<Symbol(Symbol, Symbol)>& combine, std::size_t num_output_symbols);

/// Same protocol with outputs re-labeled through `map` (into an output
/// alphabet of `num_output_symbols`).  Transitions are unchanged, so stable
/// computation of y becomes stable computation of map(y).
std::unique_ptr<TabulatedProtocol> make_output_mapped_protocol(
    const Protocol& base, const std::function<Symbol(Symbol)>& map,
    std::size_t num_output_symbols);

/// Boolean negation of a 2-output protocol (swaps false/true).
std::unique_ptr<TabulatedProtocol> make_negation_protocol(const Protocol& base);

}  // namespace popproto

#endif  // POPPROTO_CORE_COMBINATORS_H
