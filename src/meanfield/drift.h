// Mean-field drift extraction (the fluid limit of uniform random pairing).
//
// Bournez et al., "On the Convergence of Population Protocols When
// Population Goes to Infinity" (see PAPERS.md), show that under uniform
// random ordered pairing the normalized count (density) vector x of an
// n-agent run, watched in fluid time t = i / n (one interaction advances
// the clock by 1/n), converges as n -> infinity to the solution of the
// ODE dx/dt = F(x) with the quadratic drift
//
//   F_s(x) = sum_{p,q} x_p x_q ( [delta_1(p,q) = s] + [delta_2(p,q) = s]
//                                - [p = s] - [q = s] ).
//
// Only multiset-changing ordered pairs contribute — identities and swaps
// cancel exactly — so the drift is assembled once from
// TabulatedProtocol::effective_transitions() as a sparse quadratic form
// and evaluated in O(#effective pairs), independent of n.  Each term's
// coefficients sum to zero (an interaction conserves agents), so
// sum_s F_s(x) = 0 identically and the simplex is invariant:
// trajectories started at a density vector stay one.

#ifndef POPPROTO_MEANFIELD_DRIFT_H
#define POPPROTO_MEANFIELD_DRIFT_H

#include <cstddef>
#include <utility>
#include <vector>

#include "core/tabulated_protocol.h"

namespace popproto {

/// The vector field F of a protocol's fluid limit, assembled once and
/// evaluated many times by the RK45 integrator (meanfield/integrator.h).
class DriftField {
public:
    explicit DriftField(const TabulatedProtocol& protocol);

    std::size_t num_states() const { return num_states_; }

    /// Number of ordered state pairs with a nonzero drift contribution
    /// (== the protocol's effective transitions).
    std::size_t num_terms() const { return terms_.size(); }

    /// Writes F(x) into `out` (resized to num_states()).  `x` must have
    /// num_states() entries; it is a density vector in intended use but
    /// any point is accepted (the quadratic form is defined everywhere).
    void eval(const std::vector<double>& x, std::vector<double>& out) const;

    /// Convenience allocating overload.
    std::vector<double> operator()(const std::vector<double>& x) const;

    /// sup-norm ||F(x)||_inf, the fluid analogue of the batch engine's
    /// effective-pair count W (both vanish exactly on silent mixtures of
    /// mutually-null states).
    double sup_norm(const std::vector<double>& x) const;

private:
    /// One ordered pair (p, q) with its sparse density changes: interacting
    /// moves weight x_p * x_q along `changes` (coefficients in {-2,-1,1,2},
    /// summing to zero).
    struct Term {
        State p = 0;
        State q = 0;
        std::vector<std::pair<State, double>> changes;
    };

    std::size_t num_states_ = 0;
    std::vector<Term> terms_;
};

}  // namespace popproto

#endif  // POPPROTO_MEANFIELD_DRIFT_H
