// Mean-field fast-forward for the adaptive dispatcher (fluid assist).
//
// A dense transient is the one phase where the simulation engines do the
// least interesting work per cycle: the trajectory hugs its fluid limit
// (meanfield/integrator.h) with O(1/sqrt(n)) fluctuations, so simulating
// it stochastically mostly re-derives the ODE solution.  Fluid assist
// replaces that phase with the ODE: integrate dx/dt = F(x) from the
// initial density, find the earliest fluid time where the adaptive
// monitor's signal x = rho * E[L] drops to the collapsed-exit threshold
// (rho evaluated on the fluid densities), draw one multinomial sample of n
// agents from the predicted density there, and hand simulate_adaptive a
// synthetic count-batch checkpoint at interaction index round(n * t).  The
// stochastic simulation then runs only the sparse tail — the part where
// sample-path fluctuations actually decide the outcome.
//
// This is an explicit approximation, wired as an opt-in hook
// (RunOptions::fluid_assist + fluid_hook) rather than a default: a
// fluid-assisted run is NOT bit-identical to — nor even an exact sample
// path of — the unassisted law (fluctuations of the transient are
// discarded; the fast-forwarded interaction/effective counters are
// estimates).  Every bit-identity guarantee of simulate_adaptive is stated
// for fluid_assist == false.

#ifndef POPPROTO_MEANFIELD_FLUID_ASSIST_H
#define POPPROTO_MEANFIELD_FLUID_ASSIST_H

#include <functional>
#include <optional>

#include "core/configuration.h"
#include "core/run_loop.h"
#include "core/simulator.h"
#include "core/tabulated_protocol.h"
#include "meanfield/integrator.h"

namespace popproto {

/// Builds the RunOptions::fluid_hook backed by solve_fluid.  The returned
/// hook integrates to `fluid_options.t_end` (0 picks a horizon of
/// 8 * (ln n + 1), enough for the Theta(log n) fluid transients of the
/// paper's protocols, with an equilibrium detector armed) and returns the
/// synthetic checkpoint — or nullopt, declining the assist, when the fluid
/// prediction never reaches the sparse regime inside the horizon, when the
/// crossing lies at or beyond the run's interaction budget, or when the
/// run starts sparse already.  Thresholds are read from the RunOptions the
/// hook is invoked with, so one hook serves differently-tuned runs.
std::function<std::optional<RunCheckpoint>(
    const TabulatedProtocol& protocol, const CountConfiguration& initial,
    const RunOptions& options)>
make_fluid_assist_hook(FluidOptions fluid_options = {});

}  // namespace popproto

#endif  // POPPROTO_MEANFIELD_FLUID_ASSIST_H
