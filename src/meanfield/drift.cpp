#include "meanfield/drift.h"

#include <cmath>

#include "core/require.h"

namespace popproto {

DriftField::DriftField(const TabulatedProtocol& protocol)
    : num_states_(protocol.num_states()) {
    for (const EffectiveTransition& t : protocol.effective_transitions()) {
        // Accumulate the dense change vector of this pair, then sparsify.
        // Effective transitions change the multiset, so at least two
        // coefficients survive.
        std::vector<double> change(num_states_, 0.0);
        change[t.initiator] -= 1.0;
        change[t.responder] -= 1.0;
        change[t.result.initiator] += 1.0;
        change[t.result.responder] += 1.0;
        Term term;
        term.p = t.initiator;
        term.q = t.responder;
        for (State s = 0; s < num_states_; ++s) {
            if (change[s] != 0.0) term.changes.emplace_back(s, change[s]);
        }
        terms_.push_back(std::move(term));
    }
}

void DriftField::eval(const std::vector<double>& x, std::vector<double>& out) const {
    require(x.size() == num_states_, "DriftField::eval: wrong density dimension");
    out.assign(num_states_, 0.0);
    for (const Term& term : terms_) {
        const double weight = x[term.p] * x[term.q];
        for (const auto& [s, coefficient] : term.changes) out[s] += coefficient * weight;
    }
}

std::vector<double> DriftField::operator()(const std::vector<double>& x) const {
    std::vector<double> out;
    eval(x, out);
    return out;
}

double DriftField::sup_norm(const std::vector<double>& x) const {
    std::vector<double> drift;
    eval(x, drift);
    double norm = 0.0;
    for (double value : drift) norm = std::max(norm, std::abs(value));
    return norm;
}

}  // namespace popproto
