// Cross-validation of fluid-limit predictions against simulated runs.
//
// The mean-field engine predicts the density trajectory x(t); the
// simulation engines produce count trajectories of finite populations.
// Rescaling a recorded run — counts divided by n, interaction index i
// mapped to fluid time t = i / n — makes the two directly comparable,
// and the Bournez et al. convergence theorem says the deviation should
// vanish as n grows (CLT scaling: O(1/sqrt(n)) for a single run, and
// O(1/sqrt(T n)) for the mean of T independent runs).  This module turns
// that statement into a measurement: it converts TraceRecorder
// trajectories (from any simulation engine) into normalized form,
// averages them across trials, and reports sup-norm and per-state
// deviations from a FluidSolution — making the observability layer a
// correctness oracle for both sides (an integrator bug or a simulator
// bias shows up as a deviation that fails to shrink with n).

#ifndef POPPROTO_MEANFIELD_COMPARATOR_H
#define POPPROTO_MEANFIELD_COMPARATOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/configuration.h"
#include "core/tabulated_protocol.h"
#include "meanfield/integrator.h"
#include "observe/trace_recorder.h"
#include "randomized/trials.h"

namespace popproto {

/// A simulated trajectory in fluid coordinates: densities[k] is the
/// normalized count vector at fluid time times[k] = i_k / n.
struct EmpiricalTrajectory {
    std::uint64_t population = 0;
    std::vector<double> times;
    std::vector<std::vector<double>> densities;
};

/// Rescales one finished recorded run (initial configuration, scheduled
/// snapshots, final configuration) to fluid time and densities.
EmpiricalTrajectory normalized_trajectory(const TraceRecorder& recorder);

/// Runs `options.trials` simulations (via measure_trials, so
/// options.base.engine and options.threads apply) with one TraceRecorder
/// per trial on the schedule in options.base.snapshots, and averages the
/// normalized trajectories pointwise over a common fluid-time grid: the
/// scheduled indices up to the longest run's stop index, plus t = 0.
/// Trials that stopped before a grid point contribute their final
/// configuration there — exact for silent stops (a silent configuration
/// never changes again), an approximation for budget/stable-output stops.
/// Requires an enabled snapshot schedule.
EmpiricalTrajectory mean_normalized_trajectory(const TabulatedProtocol& protocol,
                                               const CountConfiguration& initial,
                                               const TrialOptions& options);

/// Deviation between an ODE solution and an empirical trajectory,
/// evaluated at the empirical time points (fluid times beyond the
/// solution's integrated span clamp to its final density — harmless when
/// the solve ran to equilibrium, so choose t_end accordingly).
struct TrajectoryDeviation {
    /// max over compared points and states of |x_ode - x_sim|.
    double sup = 0.0;
    /// Fluid time and state where the sup was attained.
    double sup_time = 0.0;
    State sup_state = 0;
    /// Per-state sup over the compared time points.
    std::vector<double> per_state;
    std::size_t points = 0;
};

TrajectoryDeviation compare_to_fluid(const FluidSolution& solution,
                                     const EmpiricalTrajectory& empirical);

}  // namespace popproto

#endif  // POPPROTO_MEANFIELD_COMPARATOR_H
