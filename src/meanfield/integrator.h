// Adaptive RK45 integration of a protocol's fluid limit.
//
// `solve_fluid` is the fifth execution engine: where the four simulation
// engines advance an n-agent configuration one random interaction at a
// time, this one advances the *density* vector x(t) deterministically
// along dx/dt = F(x) (meanfield/drift.h) in fluid time t = i / n — a
// whole-population prediction whose cost is independent of n.  The API
// deliberately mirrors RunOptions / run_simulation / RunResult:
//
//   simulation                      fluid limit
//   -------------------------      ---------------------------------
//   max_interactions (budget)      FluidOptions::t_end (horizon)
//   stop_after_stable_outputs      equilibrium_eps + equilibrium_window
//   RunResult::stop_reason         FluidStopReason
//   snapshots via RunObserver      dense output via FluidSolution
//
// The integrator is the Dormand–Prince 5(4) pair with standard step-size
// control and the classical quartic dense-output interpolant, so the
// solution can be evaluated at arbitrary times (e.g. at the fluid times
// of recorded simulation snapshots; meanfield/comparator.h) without
// re-integrating.

#ifndef POPPROTO_MEANFIELD_INTEGRATOR_H
#define POPPROTO_MEANFIELD_INTEGRATOR_H

#include <cstddef>
#include <vector>

#include "core/configuration.h"
#include "core/tabulated_protocol.h"
#include "meanfield/drift.h"

namespace popproto {

/// Knobs controlling one fluid-limit solve (the FluidOptions/RunOptions
/// mirror; see the file comment for the correspondence).
struct FluidOptions {
    /// Fluid-time horizon: integrate over [0, t_end] (t = i / n, so t_end
    /// corresponds to n * t_end interactions of a size-n population).
    /// Must be positive.
    double t_end = 0.0;

    /// Local error control: per-component tolerance
    /// abs_tol + rel_tol * |x_s|.
    double rel_tol = 1e-8;
    double abs_tol = 1e-10;

    /// If nonzero, additionally stop once ||F(x)||_inf stays below this
    /// threshold for `equilibrium_window` units of fluid time — the fluid
    /// analogue of the stable-output stopping rule (F == 0 exactly on
    /// silent mixtures).  Choose eps well above the solver's error floor
    /// (a few orders of magnitude over abs_tol): below it the integrated
    /// density jitters across the threshold and the window keeps
    /// resetting, so the detector may never fire.
    double equilibrium_eps = 0.0;

    /// Fluid time the drift must remain below `equilibrium_eps` before the
    /// equilibrium detector fires.
    double equilibrium_window = 1.0;

    /// First trial step; 0 selects the standard automatic choice.
    double initial_step = 0.0;

    /// Hard cap on the step size; 0 means uncapped.
    double max_step = 0.0;

    /// Safety cap on accepted+rejected steps (guards against tolerance
    /// choices that stall); exceeding it stops with kMaxSteps.
    std::size_t max_steps = 1000000;

    /// Retain the dense output (FluidResult::solution).  Disable for
    /// endpoint-only solves in tight loops.
    bool keep_solution = true;
};

struct FluidResult;
class FluidSolution;

FluidResult solve_fluid(const DriftField& drift, std::vector<double> initial_density,
                        const FluidOptions& options);

/// Why a fluid solve stopped (the StopReason mirror).
enum class FluidStopReason {
    kHorizon,      ///< reached t_end
    kEquilibrium,  ///< drift stayed below equilibrium_eps for the window
    kMaxSteps,     ///< max_steps exhausted before either of the above
};

/// Piecewise-quartic dense output of one solve: the accepted RK45 steps
/// with their interpolation polynomials.  Evaluation clamps outside the
/// integrated span (before 0 returns the initial density, after the stop
/// time the final one).
class FluidSolution {
public:
    FluidSolution() = default;

    std::size_t num_states() const { return initial_.size(); }
    double t_begin() const { return 0.0; }

    /// Last integrated time (== FluidResult::t_reached of the solve).
    double t_end() const;

    /// Density vector at fluid time `t` (clamped to the integrated span).
    std::vector<double> density_at(double t) const;

    /// Density of state `s` at fluid time `t`.
    double density_at(double t, State s) const;

    std::size_t num_segments() const { return segments_.size(); }

private:
    friend FluidResult solve_fluid(const DriftField& drift, std::vector<double> initial_density,
                                   const FluidOptions& options);

    /// One accepted step [t0, t0 + h] with interpolant
    /// y(t0 + theta h) = y0 + sum_{j=0..3} theta^{j+1} * coeff[j].
    struct Segment {
        double t0 = 0.0;
        double h = 0.0;
        std::vector<double> y0;
        /// 4 stacked coefficient vectors, coeff[j * num_states + s].
        std::vector<double> coeff;
    };

    const Segment* segment_at(double t) const;

    std::vector<double> initial_;
    std::vector<double> final_;
    std::vector<Segment> segments_;
};

/// Outcome of a fluid solve (the RunResult mirror).
struct FluidResult {
    /// Density vector at t_reached.
    std::vector<double> final_density;

    FluidStopReason stop_reason = FluidStopReason::kHorizon;

    /// Fluid time actually integrated to (== t_end unless a detector or
    /// the step cap fired first).
    double t_reached = 0.0;

    /// sup-norm of the drift at the final density (0 iff the fluid limit
    /// is exactly stationary there).
    double final_drift_norm = 0.0;

    std::size_t steps_accepted = 0;
    std::size_t steps_rejected = 0;
    std::size_t drift_evaluations = 0;

    /// Dense output (empty when FluidOptions::keep_solution is false).
    FluidSolution solution;
};

/// Solves the fluid limit of `protocol` from the normalized counts of
/// `initial` (the run_simulation mirror).  Requires a nonempty population.
FluidResult solve_fluid(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                        const FluidOptions& options);

/// Lower-level entry point: integrates an already-assembled drift field
/// from an explicit density vector (entries must be nonnegative and sum
/// to 1 within 1e-9; the sum is preserved by construction).
FluidResult solve_fluid(const DriftField& drift, std::vector<double> initial_density,
                        const FluidOptions& options);

}  // namespace popproto

#endif  // POPPROTO_MEANFIELD_INTEGRATOR_H
