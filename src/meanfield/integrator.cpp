#include "meanfield/integrator.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "core/require.h"

namespace popproto {

namespace {

// Dormand–Prince 5(4) tableau (Hairer–Nørsett–Wanner II.4).  The seventh
// stage equals the next step's first (FSAL), so an accepted step costs six
// fresh drift evaluations.
constexpr std::size_t kStages = 7;

constexpr double kA[kStages][kStages - 1] = {
    {},
    {1.0 / 5},
    {3.0 / 40, 9.0 / 40},
    {44.0 / 45, -56.0 / 15, 32.0 / 9},
    {19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
    {9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
    {35.0 / 384, 0.0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
};

/// 5th-order weights (the last row of kA: the propagated solution).
constexpr double kB[kStages] = {35.0 / 384,     0.0,        500.0 / 1113, 125.0 / 192,
                                -2187.0 / 6784, 11.0 / 84,  0.0};

/// b - b*: weights of the embedded 4th-order error estimate.
constexpr double kE[kStages] = {71.0 / 57600,       0.0,          -71.0 / 16695, 71.0 / 1920,
                                -17253.0 / 339200,  22.0 / 525,   -1.0 / 40};

/// Dense-output matrix: y(t0 + theta h) = y0 + h * sum_i k_i * P_i(theta)
/// with P_i(theta) = sum_j kP[i][j] theta^(j+1) (the classical quartic
/// continuous extension of the pair; row sums at theta = 1 recover kB).
constexpr double kP[kStages][4] = {
    {1.0, -8048581381.0 / 2820520608.0, 8663915743.0 / 2820520608.0,
     -12715105075.0 / 11282082432.0},
    {0.0, 0.0, 0.0, 0.0},
    {0.0, 131558114200.0 / 32700410799.0, -68118460800.0 / 10900136933.0,
     87487479700.0 / 32700410799.0},
    {0.0, -1754552775.0 / 470086768.0, 14199869525.0 / 1410260304.0,
     -10690763975.0 / 1880347072.0},
    {0.0, 127303824393.0 / 49829197408.0, -318862633887.0 / 49829197408.0,
     701980252875.0 / 199316789632.0},
    {0.0, -282668133.0 / 205662961.0, 2019193451.0 / 616988883.0, -1453857185.0 / 822651844.0},
    {0.0, 40617522.0 / 29380423.0, -110615467.0 / 29380423.0, 69997945.0 / 29380423.0},
};

double rms_scaled_norm(const std::vector<double>& values, const std::vector<double>& scale) {
    double sum = 0.0;
    for (std::size_t s = 0; s < values.size(); ++s) {
        const double ratio = values[s] / scale[s];
        sum += ratio * ratio;
    }
    return std::sqrt(sum / static_cast<double>(values.size()));
}

double sup_norm(const std::vector<double>& values) {
    double norm = 0.0;
    for (double value : values) norm = std::max(norm, std::abs(value));
    return norm;
}

/// Standard automatic initial-step heuristic (Hairer–Nørsett–Wanner
/// II.4, "starting step size"): match the scale of the first derivative,
/// then refine with a trial Euler step.
double initial_step_size(const DriftField& drift, const std::vector<double>& y0,
                         const std::vector<double>& f0, double rel_tol, double abs_tol,
                         std::size_t* evaluations) {
    const std::size_t dim = y0.size();
    std::vector<double> scale(dim);
    for (std::size_t s = 0; s < dim; ++s) scale[s] = abs_tol + rel_tol * std::abs(y0[s]);

    const double d0 = rms_scaled_norm(y0, scale);
    const double d1 = rms_scaled_norm(f0, scale);
    double h0 = (d0 < 1e-5 || d1 < 1e-5) ? 1e-6 : 0.01 * d0 / d1;

    std::vector<double> y1(dim);
    for (std::size_t s = 0; s < dim; ++s) y1[s] = y0[s] + h0 * f0[s];
    std::vector<double> f1;
    drift.eval(y1, f1);
    ++*evaluations;

    std::vector<double> df(dim);
    for (std::size_t s = 0; s < dim; ++s) df[s] = f1[s] - f0[s];
    const double d2 = rms_scaled_norm(df, scale) / h0;

    const double d_max = std::max(d1, d2);
    const double h1 = d_max <= 1e-15 ? std::max(1e-6, h0 * 1e-3)
                                     : std::pow(0.01 / d_max, 1.0 / 5.0);
    return std::min(100.0 * h0, h1);
}

}  // namespace

double FluidSolution::t_end() const {
    if (segments_.empty()) return 0.0;
    const Segment& last = segments_.back();
    return last.t0 + last.h;
}

const FluidSolution::Segment* FluidSolution::segment_at(double t) const {
    if (segments_.empty()) return nullptr;
    // First segment whose start lies beyond t, then step back one: the
    // segment covering t (ends clamp below).
    auto it = std::upper_bound(segments_.begin(), segments_.end(), t,
                               [](double value, const Segment& seg) { return value < seg.t0; });
    if (it == segments_.begin()) return &segments_.front();
    return &*(it - 1);
}

std::vector<double> FluidSolution::density_at(double t) const {
    const Segment* segment = segment_at(t);
    if (segment == nullptr) return initial_;
    if (t <= 0.0) return initial_;
    if (t >= t_end()) return final_;
    const double theta = std::clamp((t - segment->t0) / segment->h, 0.0, 1.0);
    const std::size_t dim = segment->y0.size();
    std::vector<double> density(segment->y0);
    double power = 1.0;
    for (std::size_t j = 0; j < 4; ++j) {
        power *= theta;
        const double* coeff = segment->coeff.data() + j * dim;
        for (std::size_t s = 0; s < dim; ++s) density[s] += power * coeff[s];
    }
    return density;
}

double FluidSolution::density_at(double t, State s) const {
    require(s < num_states(), "FluidSolution::density_at: state out of range");
    return density_at(t)[s];
}

FluidResult solve_fluid(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                        const FluidOptions& options) {
    require(initial.num_states() == protocol.num_states(),
            "solve_fluid: configuration does not match protocol");
    require(initial.population_size() > 0, "solve_fluid: empty population");
    const double n = static_cast<double>(initial.population_size());
    std::vector<double> density(initial.num_states());
    for (State s = 0; s < initial.num_states(); ++s)
        density[s] = static_cast<double>(initial.counts()[s]) / n;
    return solve_fluid(DriftField(protocol), std::move(density), options);
}

FluidResult solve_fluid(const DriftField& drift, std::vector<double> initial_density,
                        const FluidOptions& options) {
    const std::size_t dim = drift.num_states();
    require(initial_density.size() == dim, "solve_fluid: wrong density dimension");
    require(options.t_end > 0.0, "solve_fluid: t_end must be positive");
    require(options.rel_tol > 0.0 && options.abs_tol > 0.0,
            "solve_fluid: tolerances must be positive");
    require(options.max_steps > 0, "solve_fluid: max_steps must be positive");
    require(options.equilibrium_eps >= 0.0 && options.equilibrium_window > 0.0,
            "solve_fluid: bad equilibrium detector parameters");
    double mass = 0.0;
    for (double x : initial_density) {
        require(x >= 0.0, "solve_fluid: negative initial density");
        mass += x;
    }
    require(std::abs(mass - 1.0) <= 1e-9, "solve_fluid: initial density must sum to 1");

    FluidResult result;
    result.solution.initial_ = initial_density;

    std::vector<double> y = std::move(initial_density);
    std::vector<std::vector<double>> k(kStages);
    drift.eval(y, k[0]);
    ++result.drift_evaluations;

    double t = 0.0;
    double h = options.initial_step > 0.0
                   ? options.initial_step
                   : initial_step_size(drift, y, k[0], options.rel_tol, options.abs_tol,
                                       &result.drift_evaluations);
    if (options.max_step > 0.0) h = std::min(h, options.max_step);
    h = std::min(h, options.t_end);

    // Equilibrium detector state: the fluid time since which the drift has
    // stayed below the threshold, or negative when it has not.
    double below_since = -1.0;
    if (options.equilibrium_eps > 0.0 && sup_norm(k[0]) < options.equilibrium_eps)
        below_since = 0.0;

    std::vector<double> y_stage(dim), y_new(dim), error(dim), scale(dim);
    result.stop_reason = FluidStopReason::kMaxSteps;

    for (std::size_t step = 0; step < options.max_steps; ++step) {
        const bool last_step = t + h >= options.t_end;
        if (last_step) h = options.t_end - t;

        // Stages 2..7 (stage 1 is the FSAL carry-over in k[0]).
        for (std::size_t i = 1; i < kStages; ++i) {
            for (std::size_t s = 0; s < dim; ++s) {
                double acc = 0.0;
                for (std::size_t j = 0; j < i; ++j) acc += kA[i][j] * k[j][s];
                y_stage[s] = y[s] + h * acc;
            }
            drift.eval(y_stage, k[i]);
            ++result.drift_evaluations;
        }

        // 5th-order candidate and embedded error estimate.  Stage 7 was
        // evaluated exactly at the candidate (kB == kA's last row), so
        // y_new is the final y_stage and k[6] its drift.
        y_new = y_stage;
        for (std::size_t s = 0; s < dim; ++s) {
            double err = 0.0;
            for (std::size_t i = 0; i < kStages; ++i) err += kE[i] * k[i][s];
            error[s] = h * err;
            scale[s] = options.abs_tol +
                       options.rel_tol * std::max(std::abs(y[s]), std::abs(y_new[s]));
        }
        const double error_norm = rms_scaled_norm(error, scale);

        if (error_norm > 1.0) {
            ++result.steps_rejected;
            h *= std::max(0.2, 0.9 * std::pow(error_norm, -0.2));
            continue;
        }

        // Accept: record the dense-output segment, advance, FSAL.
        ++result.steps_accepted;
        if (options.keep_solution) {
            FluidSolution::Segment segment;
            segment.t0 = t;
            segment.h = h;
            segment.y0 = y;
            segment.coeff.assign(4 * dim, 0.0);
            for (std::size_t j = 0; j < 4; ++j) {
                double* coeff = segment.coeff.data() + j * dim;
                for (std::size_t i = 0; i < kStages; ++i) {
                    if (kP[i][j] == 0.0) continue;
                    const double weight = h * kP[i][j];
                    for (std::size_t s = 0; s < dim; ++s) coeff[s] += weight * k[i][s];
                }
            }
            result.solution.segments_.push_back(std::move(segment));
        }
        t = last_step ? options.t_end : t + h;
        y.swap(y_new);
        k[0].swap(k[6]);

        if (options.equilibrium_eps > 0.0) {
            if (sup_norm(k[0]) < options.equilibrium_eps) {
                if (below_since < 0.0) below_since = t;
                if (t - below_since >= options.equilibrium_window) {
                    result.stop_reason = FluidStopReason::kEquilibrium;
                    break;
                }
            } else {
                below_since = -1.0;
            }
        }
        if (last_step) {
            result.stop_reason = FluidStopReason::kHorizon;
            break;
        }

        const double factor =
            error_norm <= 1e-14 ? 10.0 : std::min(10.0, 0.9 * std::pow(error_norm, -0.2));
        h *= std::max(0.2, factor);
        if (options.max_step > 0.0) h = std::min(h, options.max_step);
    }

    result.t_reached = t;
    result.final_density = y;
    result.final_drift_norm = sup_norm(k[0]);
    result.solution.final_ = std::move(y);
    return result;
}

}  // namespace popproto
