#include "meanfield/fluid_assist.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/effect_tables.h"
#include "core/require.h"
#include "core/rng.h"

namespace popproto {

namespace {

/// rho(x) = sum over effective ordered state pairs of x_p * x_q: the fluid
/// analogue of W / n(n-1) (the diagonal's missing 1/n correction vanishes
/// in the limit, and fluid assist only runs at collapsed scale).
double effective_pair_density(const EffectTables& eff, const std::vector<double>& x) {
    double rho = 0.0;
    for (State p = 0; p < eff.num_states; ++p) {
        if (x[p] == 0.0) continue;
        const std::uint8_t* row = eff.eff_row.data() + static_cast<std::size_t>(p) * eff.num_states;
        double dot = 0.0;
        for (State q = 0; q < eff.num_states; ++q)
            if (row[q]) dot += x[q];
        rho += x[p] * dot;
    }
    return rho;
}

/// One multinomial sample of `population` agents from `density` via the
/// standard binomial cascade (conditionals of the remaining mass).
std::vector<std::uint64_t> sample_counts(Rng& rng, const std::vector<double>& density,
                                         std::uint64_t population) {
    std::vector<std::uint64_t> counts(density.size(), 0);
    std::uint64_t remaining = population;
    double mass = 0.0;
    for (const double d : density) mass += std::max(d, 0.0);
    for (std::size_t s = 0; s + 1 < density.size() && remaining > 0; ++s) {
        const double d = std::max(density[s], 0.0);
        const double p = mass > 0.0 ? std::min(d / mass, 1.0) : 0.0;
        const std::uint64_t c = rng.binomial(remaining, p);
        counts[s] = c;
        remaining -= c;
        mass = std::max(mass - d, 0.0);
    }
    if (!counts.empty()) counts.back() += remaining;
    return counts;
}

}  // namespace

std::function<std::optional<RunCheckpoint>(
    const TabulatedProtocol& protocol, const CountConfiguration& initial,
    const RunOptions& options)>
make_fluid_assist_hook(FluidOptions fluid_options) {
    return [fluid_options](const TabulatedProtocol& protocol, const CountConfiguration& initial,
                           const RunOptions& options) -> std::optional<RunCheckpoint> {
        const std::uint64_t n = initial.population_size();
        require(n >= 2, "fluid_assist: need at least two agents");
        const double nd = static_cast<double>(n);

        FluidOptions solve_options = fluid_options;
        if (solve_options.t_end == 0.0) {
            // Theta(log n) covers the fluid transients of the paper's
            // protocols (epidemic, counting, majority); the equilibrium
            // detector cuts the solve short when the drift dies earlier.
            solve_options.t_end = 8.0 * (std::log(nd) + 1.0);
            if (solve_options.equilibrium_eps == 0.0) {
                solve_options.equilibrium_eps = 1e-9;
                solve_options.equilibrium_window = 0.5;
            }
        }
        solve_options.keep_solution = true;

        const FluidResult fluid = solve_fluid(protocol, initial, solve_options);
        const double t_reached = fluid.solution.num_segments() != 0
                                     ? fluid.t_reached
                                     : 0.0;
        if (t_reached <= 0.0) return std::nullopt;

        // Find the earliest fluid time where the monitor signal falls to
        // the collapsed-exit threshold: coarse scan over the dense output,
        // then bisection inside the bracketing interval.
        const EffectTables eff(protocol);
        const double expected_run_length = 1.2533141373155003 * std::sqrt(nd);
        const double exit_threshold = options.adaptive.exit_collapsed;
        const auto signal_at = [&](double t) {
            return effective_pair_density(eff, fluid.solution.density_at(t)) *
                   expected_run_length;
        };

        if (signal_at(0.0) <= exit_threshold) return std::nullopt;  // starts sparse
        constexpr int kScanSamples = 1024;
        double lo = 0.0;
        double hi = -1.0;
        for (int k = 1; k <= kScanSamples; ++k) {
            const double t = t_reached * static_cast<double>(k) / kScanSamples;
            if (signal_at(t) <= exit_threshold) {
                hi = t;
                break;
            }
            lo = t;
        }
        if (hi < 0.0) return std::nullopt;  // never leaves the dense regime
        for (int iter = 0; iter < 50 && hi - lo > 1e-12 * t_reached; ++iter) {
            const double mid = 0.5 * (lo + hi);
            (signal_at(mid) <= exit_threshold ? hi : lo) = mid;
        }
        const double t_cross = hi;

        const auto interactions = static_cast<std::uint64_t>(std::llround(nd * t_cross));
        if (interactions == 0 || interactions >= resolved_budget(options, n))
            return std::nullopt;

        // Re-seed the stochastic run: one multinomial draw from the
        // predicted density, on the run's own seed so the assisted run is
        // reproducible; the continuation stream is whatever the draw left.
        Rng rng(options.seed);
        std::vector<std::uint64_t> counts =
            sample_counts(rng, fluid.solution.density_at(t_cross), n);

        RunCheckpoint checkpoint;
        checkpoint.engine = ObservedEngine::kCountBatch;
        checkpoint.population = n;
        checkpoint.num_states = protocol.num_states();
        checkpoint.rng = rng.save_state();
        checkpoint.interactions = interactions;
        // The skipped transient's effective count is unknown (the fluid
        // limit does not resolve it); counters restart from the splice, so
        // RunResult::effective_interactions reports the tail only.
        checkpoint.effective_interactions = 0;
        // Conservative: treat outputs as having just changed, so a
        // stable-output window never fires on fast-forwarded silence.
        checkpoint.last_output_change = interactions;
        checkpoint.next_silence_check = 0;
        checkpoint.changed_since_silence_check = true;
        checkpoint.counts = std::move(counts);
        return checkpoint;
    };
}

}  // namespace popproto
