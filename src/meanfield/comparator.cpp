#include "meanfield/comparator.h"

#include <algorithm>
#include <cmath>

#include "core/observer.h"
#include "core/require.h"

namespace popproto {

EmpiricalTrajectory normalized_trajectory(const TraceRecorder& recorder) {
    require(recorder.population() > 0, "normalized_trajectory: empty population");
    EmpiricalTrajectory trajectory;
    trajectory.population = recorder.population();
    const double n = static_cast<double>(recorder.population());
    for (const TraceSnapshot& snapshot : recorder.trajectory()) {
        trajectory.times.push_back(static_cast<double>(snapshot.interaction_index) / n);
        std::vector<double> density(snapshot.counts.size());
        for (std::size_t s = 0; s < snapshot.counts.size(); ++s)
            density[s] = static_cast<double>(snapshot.counts[s]) / n;
        trajectory.densities.push_back(std::move(density));
    }
    return trajectory;
}

EmpiricalTrajectory mean_normalized_trajectory(const TabulatedProtocol& protocol,
                                               const CountConfiguration& initial,
                                               const TrialOptions& options) {
    require(options.base.snapshots.enabled(),
            "mean_normalized_trajectory: needs a snapshot schedule");
    require(options.trials >= 1, "mean_normalized_trajectory: need at least one trial");

    std::vector<TraceRecorder> recorders(options.trials);
    TrialOptions trial_options = options;
    trial_options.observer_factory = [&recorders](std::uint64_t trial) {
        return &recorders[trial];
    };
    measure_trials(protocol, initial, trial_options);

    std::uint64_t max_stop = 0;
    for (const TraceRecorder& recorder : recorders) {
        require(recorder.result().has_value(),
                "mean_normalized_trajectory: trial did not finish");
        max_stop = std::max(max_stop, recorder.result()->interactions);
    }

    // Common grid: t = 0 plus every scheduled index up to the longest run.
    // The schedule is deterministic and trajectory-independent, so every
    // trial that was still running at a grid index emitted a snapshot
    // exactly there; stopped trials contribute their final configuration.
    std::vector<std::uint64_t> grid{0};
    for (std::uint64_t index = options.base.snapshots.first_index();
         index != SnapshotSchedule::kNever && index <= max_stop;
         index = options.base.snapshots.next_after(index)) {
        grid.push_back(index);
    }

    const double n = static_cast<double>(initial.population_size());
    const std::size_t num_states = protocol.num_states();
    EmpiricalTrajectory mean;
    mean.population = initial.population_size();
    mean.times.reserve(grid.size());
    mean.densities.assign(grid.size(), std::vector<double>(num_states, 0.0));

    std::vector<std::size_t> cursor(options.trials, 0);
    for (std::size_t g = 0; g < grid.size(); ++g) {
        mean.times.push_back(static_cast<double>(grid[g]) / n);
        for (std::uint64_t trial = 0; trial < options.trials; ++trial) {
            const TraceRecorder& recorder = recorders[trial];
            const std::vector<std::uint64_t>* counts = nullptr;
            if (grid[g] == 0) {
                counts = &recorder.initial_counts();
            } else if (cursor[trial] < recorder.snapshots().size() &&
                       recorder.snapshots()[cursor[trial]].interaction_index == grid[g]) {
                counts = &recorder.snapshots()[cursor[trial]].counts;
                ++cursor[trial];
            } else {
                counts = &recorder.result()->final_configuration.counts();
            }
            for (std::size_t s = 0; s < num_states; ++s)
                mean.densities[g][s] += static_cast<double>((*counts)[s]);
        }
        const double norm = n * static_cast<double>(options.trials);
        for (std::size_t s = 0; s < num_states; ++s) mean.densities[g][s] /= norm;
    }
    return mean;
}

TrajectoryDeviation compare_to_fluid(const FluidSolution& solution,
                                     const EmpiricalTrajectory& empirical) {
    require(empirical.times.size() == empirical.densities.size(),
            "compare_to_fluid: malformed empirical trajectory");
    TrajectoryDeviation deviation;
    deviation.per_state.assign(solution.num_states(), 0.0);
    for (std::size_t k = 0; k < empirical.times.size(); ++k) {
        require(empirical.densities[k].size() == solution.num_states(),
                "compare_to_fluid: state-count mismatch");
        const std::vector<double> predicted = solution.density_at(empirical.times[k]);
        for (std::size_t s = 0; s < predicted.size(); ++s) {
            const double delta = std::abs(predicted[s] - empirical.densities[k][s]);
            deviation.per_state[s] = std::max(deviation.per_state[s], delta);
            if (delta > deviation.sup) {
                deviation.sup = delta;
                deviation.sup_time = empirical.times[k];
                deviation.sup_state = static_cast<State>(s);
            }
        }
        ++deviation.points;
    }
    return deviation;
}

}  // namespace popproto
