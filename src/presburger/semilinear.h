// Linear and semilinear sets (Sect. 4.2, Theorem 3).
//
// A set L of vectors in N^k is *linear* if
// L = { base + k_1 p_1 + ... + k_m p_m | k_i in N } for a base vector and
// finitely many period vectors, and *semilinear* if it is a finite union of
// linear sets.  By Ginsburg & Spanier (Theorem 3) the semilinear sets are
// exactly the Presburger-definable ones; the tests cross-check handwritten
// semilinear descriptions against Formula evaluation on enumerated vectors.

#ifndef POPPROTO_PRESBURGER_SEMILINEAR_H
#define POPPROTO_PRESBURGER_SEMILINEAR_H

#include <cstdint>
#include <vector>

namespace popproto {

/// One linear component: base + N-combinations of the period vectors.
/// All vectors share the dimension k; entries are non-negative.
struct LinearSet {
    std::vector<std::uint64_t> base;
    std::vector<std::vector<std::uint64_t>> periods;

    /// Membership test by depth-first search over period multiplicities.
    /// Periods with all-zero entries are ignored.  Complexity is bounded
    /// because each useful period strictly increases some coordinate.
    bool contains(const std::vector<std::uint64_t>& vector) const;
};

/// A finite union of linear sets.
struct SemilinearSet {
    std::vector<LinearSet> components;

    bool contains(const std::vector<std::uint64_t>& vector) const;
};

}  // namespace popproto

#endif  // POPPROTO_PRESBURGER_SEMILINEAR_H
