// The two base protocols of Lemma 5.
//
// Under the symbol-count input convention (x_i = number of agents that read
// input symbol sigma_i), the following predicates are stably computable:
//
//   1. sum_i a_i x_i < c          (threshold protocol)
//   2. sum_i a_i x_i = c (mod m)  (remainder protocol), m >= 2
//
// Both use states (leader bit, output bit, count) exactly as in the paper:
// every agent starts as a leader carrying its coefficient; leaders merge
// pairwise; the surviving leader's count converges to the clamped sum
// (threshold) or the sum mod m (remainder) and distributes the verdict.
//
// One deliberate refinement: the initial output bit is set to the verdict of
// the agent's own coefficient rather than constant 0, so the protocols are
// also correct for a population of a single agent (which never interacts).

#ifndef POPPROTO_PRESBURGER_ATOM_PROTOCOLS_H
#define POPPROTO_PRESBURGER_ATOM_PROTOCOLS_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/tabulated_protocol.h"

namespace popproto {

/// Lemma 5 case 1: stably computes [ sum_i coefficients[i] * x_i < constant ]
/// with the all-agents Boolean output convention.  States are
/// (leader, output, u) with u in [-s, s], s = max(|c| + 1, max_i |a_i|, 1).
std::unique_ptr<TabulatedProtocol> make_threshold_protocol(
    const std::vector<std::int64_t>& coefficients, std::int64_t constant);

/// Lemma 5 case 2: stably computes
/// [ sum_i coefficients[i] * x_i = remainder (mod modulus) ], modulus >= 2.
/// States are (leader, output, u) with u in [0, modulus).
std::unique_ptr<TabulatedProtocol> make_remainder_protocol(
    const std::vector<std::int64_t>& coefficients, std::int64_t remainder, std::int64_t modulus);

}  // namespace popproto

#endif  // POPPROTO_PRESBURGER_ATOM_PROTOCOLS_H
