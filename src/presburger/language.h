// Language acceptance (Sect. 3.5).
//
// Under the *string input convention* the i-th input symbol goes to the i-th
// agent; a protocol accepts a language L iff it stably computes L's
// characteristic function.  Theorem 1 / Corollary 1 show accepted languages
// are symmetric, and Lemma 2 reduces acceptance to stable computation of the
// Parikh image under the symbol-count convention.  Corollary 4 then gives:
// a symmetric language is accepted iff its Parikh image is semilinear.
// These helpers execute that chain of reductions.

#ifndef POPPROTO_PRESBURGER_LANGUAGE_H
#define POPPROTO_PRESBURGER_LANGUAGE_H

#include <cstdint>
#include <vector>

#include "core/tabulated_protocol.h"

namespace popproto {

/// Parikh map (Sect. 3.5): the vector of per-symbol occurrence counts of
/// `word` over an alphabet of `alphabet_size` symbols.
std::vector<std::uint64_t> parikh_image(const std::vector<Symbol>& word,
                                        std::size_t alphabet_size);

/// Exact acceptance test: true iff every fair computation of `protocol` on
/// `word` (string input convention) converges with all agents outputting
/// true.  Decided by the Lemma 2 reduction plus the multiset analyzer; the
/// empty word is rejected (there is no population to ask).
bool accepts_word(const TabulatedProtocol& protocol, const std::vector<Symbol>& word,
                  std::size_t max_configs = 1u << 20);

/// Dual exact test: every fair computation converges to all-false.
bool rejects_word(const TabulatedProtocol& protocol, const std::vector<Symbol>& word,
                  std::size_t max_configs = 1u << 20);

}  // namespace popproto

#endif  // POPPROTO_PRESBURGER_LANGUAGE_H
