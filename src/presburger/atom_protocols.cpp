#include "presburger/atom_protocols.h"

#include <algorithm>
#include <string>

#include "core/require.h"

namespace popproto {

namespace {

/// Shared layout for both atom protocols: state = (leader, output, slot)
/// where slot ranges over `num_slots` count values.
struct AtomLayout {
    std::int64_t num_slots;

    State encode(bool leader, bool output, std::int64_t slot) const {
        return static_cast<State>(((leader ? 2 : 0) + (output ? 1 : 0)) * num_slots + slot);
    }
    bool leader(State q) const { return q / num_slots >= 2; }
    bool output(State q) const { return (q / num_slots) % 2 == 1; }
    std::int64_t slot(State q) const { return static_cast<std::int64_t>(q) % num_slots; }
    std::size_t num_states() const { return static_cast<std::size_t>(4 * num_slots); }
};

std::vector<std::string> input_symbol_names(std::size_t count) {
    std::vector<std::string> names;
    names.reserve(count);
    for (std::size_t i = 0; i < count; ++i) names.push_back("sigma" + std::to_string(i));
    return names;
}

}  // namespace

std::unique_ptr<TabulatedProtocol> make_threshold_protocol(
    const std::vector<std::int64_t>& coefficients, std::int64_t constant) {
    require(!coefficients.empty(), "make_threshold_protocol: no input symbols");

    std::int64_t max_coefficient = 1;
    for (std::int64_t a : coefficients)
        max_coefficient = std::max(max_coefficient, a >= 0 ? a : -a);
    const std::int64_t s =
        std::max<std::int64_t>({(constant >= 0 ? constant : -constant) + 1, max_coefficient, 1});

    const AtomLayout layout{2 * s + 1};  // slot = u + s, u in [-s, s]
    const auto u_of_slot = [s](std::int64_t slot) { return slot - s; };
    const auto slot_of_u = [s](std::int64_t u) { return u + s; };
    const auto clamp = [s](std::int64_t v) { return std::max(-s, std::min(s, v)); };

    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 2;
    tables.output_names = {"false", "true"};
    tables.input_names = input_symbol_names(coefficients.size());

    tables.output.resize(layout.num_states());
    tables.state_names.resize(layout.num_states());
    for (State q = 0; q < layout.num_states(); ++q) {
        tables.output[q] = layout.output(q) ? kOutputTrue : kOutputFalse;
        tables.state_names[q] = std::string(layout.leader(q) ? "L" : "-") +
                                (layout.output(q) ? "1" : "0") + "," +
                                std::to_string(u_of_slot(layout.slot(q)));
    }

    for (std::int64_t a : coefficients) {
        // I(sigma_i) = (leader, [a_i < c]-ish initial verdict, a_i).
        const bool initial_output = clamp(a) < constant;
        tables.initial.push_back(layout.encode(true, initial_output, slot_of_u(a)));
    }

    tables.delta.resize(layout.num_states() * layout.num_states());
    for (State p = 0; p < layout.num_states(); ++p) {
        for (State q = 0; q < layout.num_states(); ++q) {
            StatePair result{p, q};
            if (layout.leader(p) || layout.leader(q)) {
                const std::int64_t sum = u_of_slot(layout.slot(p)) + u_of_slot(layout.slot(q));
                const std::int64_t merged = clamp(sum);
                const std::int64_t rest = sum - merged;
                const bool verdict = merged < constant;
                result.initiator = layout.encode(true, verdict, slot_of_u(merged));
                result.responder = layout.encode(false, verdict, slot_of_u(rest));
            }
            tables.delta[static_cast<std::size_t>(p) * layout.num_states() + q] = result;
        }
    }
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

std::unique_ptr<TabulatedProtocol> make_remainder_protocol(
    const std::vector<std::int64_t>& coefficients, std::int64_t remainder, std::int64_t modulus) {
    require(!coefficients.empty(), "make_remainder_protocol: no input symbols");
    require(modulus >= 2, "make_remainder_protocol: modulus must be at least 2");

    const auto reduce = [modulus](std::int64_t v) { return ((v % modulus) + modulus) % modulus; };
    const std::int64_t target = reduce(remainder);

    const AtomLayout layout{modulus};  // slot = u in [0, modulus)

    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 2;
    tables.output_names = {"false", "true"};
    tables.input_names = input_symbol_names(coefficients.size());

    tables.output.resize(layout.num_states());
    tables.state_names.resize(layout.num_states());
    for (State q = 0; q < layout.num_states(); ++q) {
        tables.output[q] = layout.output(q) ? kOutputTrue : kOutputFalse;
        tables.state_names[q] = std::string(layout.leader(q) ? "L" : "-") +
                                (layout.output(q) ? "1" : "0") + "," +
                                std::to_string(layout.slot(q));
    }

    for (std::int64_t a : coefficients) {
        const std::int64_t u = reduce(a);
        tables.initial.push_back(layout.encode(true, u == target, u));
    }

    tables.delta.resize(layout.num_states() * layout.num_states());
    for (State p = 0; p < layout.num_states(); ++p) {
        for (State q = 0; q < layout.num_states(); ++q) {
            StatePair result{p, q};
            if (layout.leader(p) || layout.leader(q)) {
                const std::int64_t merged = reduce(layout.slot(p) + layout.slot(q));
                const bool verdict = merged == target;
                result.initiator = layout.encode(true, verdict, merged);
                result.responder = layout.encode(false, verdict, 0);
            }
            tables.delta[static_cast<std::size_t>(p) * layout.num_states() + q] = result;
        }
    }
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

}  // namespace popproto
