#include "presburger/semilinear.h"

#include <algorithm>

#include "core/require.h"

namespace popproto {

namespace {

/// Can `remaining` be written as an N-combination of periods[from..]?
bool match(const std::vector<std::uint64_t>& remaining,
           const std::vector<std::vector<std::uint64_t>>& periods, std::size_t from) {
    const bool all_zero = std::all_of(remaining.begin(), remaining.end(),
                                      [](std::uint64_t v) { return v == 0; });
    if (all_zero) return true;
    if (from == periods.size()) return false;

    const std::vector<std::uint64_t>& period = periods[from];
    // Maximum multiplicity of this period that fits under `remaining`.
    std::uint64_t max_multiplicity = ~std::uint64_t{0};
    bool useful = false;
    for (std::size_t i = 0; i < period.size(); ++i) {
        if (period[i] == 0) continue;
        useful = true;
        max_multiplicity = std::min(max_multiplicity, remaining[i] / period[i]);
    }
    if (!useful) return match(remaining, periods, from + 1);

    std::vector<std::uint64_t> rest = remaining;
    for (std::uint64_t multiplicity = 0; multiplicity <= max_multiplicity; ++multiplicity) {
        if (match(rest, periods, from + 1)) return true;
        if (multiplicity == max_multiplicity) break;
        for (std::size_t i = 0; i < period.size(); ++i) rest[i] -= period[i];
    }
    return false;
}

}  // namespace

bool LinearSet::contains(const std::vector<std::uint64_t>& vector) const {
    require(vector.size() == base.size(), "LinearSet::contains: dimension mismatch");
    for (const auto& period : periods)
        require(period.size() == base.size(), "LinearSet: ragged period vector");

    std::vector<std::uint64_t> remaining(vector.size());
    for (std::size_t i = 0; i < vector.size(); ++i) {
        if (vector[i] < base[i]) return false;
        remaining[i] = vector[i] - base[i];
    }
    return match(remaining, periods, 0);
}

bool SemilinearSet::contains(const std::vector<std::uint64_t>& vector) const {
    return std::any_of(components.begin(), components.end(),
                       [&](const LinearSet& component) { return component.contains(vector); });
}

}  // namespace popproto
