#include "presburger/parser.h"

#include <cctype>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/require.h"

namespace popproto {

namespace {

/// A linear expression sum_i coefficients[i] x_i + constant.
struct Linear {
    std::vector<std::int64_t> coefficients;
    std::int64_t constant = 0;

    void add_coefficient(std::size_t variable, std::int64_t value) {
        if (coefficients.size() <= variable) coefficients.resize(variable + 1, 0);
        coefficients[variable] += value;
    }
};

Linear subtract(const Linear& left, const Linear& right) {
    Linear result = left;
    if (result.coefficients.size() < right.coefficients.size())
        result.coefficients.resize(right.coefficients.size(), 0);
    for (std::size_t i = 0; i < right.coefficients.size(); ++i)
        result.coefficients[i] -= right.coefficients[i];
    result.constant -= right.constant;
    return result;
}

/// Coefficient vector padded to at least one variable (atoms need one).
std::vector<std::int64_t> atom_coefficients(const Linear& linear) {
    std::vector<std::int64_t> coefficients = linear.coefficients;
    if (coefficients.empty()) coefficients.push_back(0);
    return coefficients;
}

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    Formula parse() {
        Formula result = parse_formula();
        skip_spaces();
        if (position_ != text_.size()) fail("trailing input");
        return result;
    }

private:
    [[noreturn]] void fail(const std::string& message) const {
        throw std::invalid_argument("parse_formula: " + message + " at position " +
                                    std::to_string(position_) + " in \"" + text_ + "\"");
    }

    void skip_spaces() {
        while (position_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[position_])))
            ++position_;
    }

    bool consume(const std::string& token) {
        skip_spaces();
        if (text_.compare(position_, token.size(), token) != 0) return false;
        // Word tokens must not run into identifier characters.
        if (std::isalpha(static_cast<unsigned char>(token[0]))) {
            const std::size_t end = position_ + token.size();
            if (end < text_.size() &&
                std::isalnum(static_cast<unsigned char>(text_[end])))
                return false;
        }
        position_ += token.size();
        return true;
    }

    char peek() {
        skip_spaces();
        return position_ < text_.size() ? text_[position_] : '\0';
    }

    std::int64_t parse_integer() {
        skip_spaces();
        const std::size_t start = position_;
        while (position_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[position_])))
            ++position_;
        if (position_ == start) fail("expected an integer");
        return std::stoll(text_.substr(start, position_ - start));
    }

    std::optional<std::size_t> try_parse_variable() {
        skip_spaces();
        if (position_ >= text_.size() || text_[position_] != 'x') return std::nullopt;
        if (position_ + 1 >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[position_ + 1])))
            return std::nullopt;
        ++position_;  // 'x'
        return static_cast<std::size_t>(parse_integer());
    }

    /// term := integer ['*'] variable | integer | variable
    void parse_term(Linear& linear, std::int64_t sign) {
        skip_spaces();
        if (std::isdigit(static_cast<unsigned char>(peek()))) {
            const std::int64_t value = parse_integer();
            consume("*");
            if (auto variable = try_parse_variable()) {
                linear.add_coefficient(*variable, sign * value);
            } else {
                linear.constant += sign * value;
            }
            return;
        }
        if (auto variable = try_parse_variable()) {
            linear.add_coefficient(*variable, sign);
            return;
        }
        fail("expected a term (integer, k*xN, or xN)");
    }

    Linear parse_linear() {
        Linear linear;
        std::int64_t sign = consume("-") ? -1 : 1;
        parse_term(linear, sign);
        for (;;) {
            if (consume("+")) {
                parse_term(linear, 1);
            } else if (consume("-")) {
                parse_term(linear, -1);
            } else {
                return linear;
            }
        }
    }

    Formula parse_atom() {
        const Linear left = parse_linear();

        enum class Cmp { kLt, kLe, kGt, kGe, kEq, kNe };
        Cmp cmp;
        if (consume("<=")) {
            cmp = Cmp::kLe;
        } else if (consume(">=")) {
            cmp = Cmp::kGe;
        } else if (consume("<")) {
            cmp = Cmp::kLt;
        } else if (consume(">")) {
            cmp = Cmp::kGt;
        } else if (consume("==") || consume("=")) {
            cmp = Cmp::kEq;
        } else if (consume("!=")) {
            cmp = Cmp::kNe;
        } else {
            fail("expected a comparison operator");
        }

        const Linear right = parse_linear();

        // Congruence form: linear = linear mod m.
        if (cmp == Cmp::kEq && consume("mod")) {
            const std::int64_t modulus = parse_integer();
            const Linear diff = subtract(left, right);
            // sum a_i x_i + c = 0 (mod m)  <=>  sum a_i x_i = -c (mod m).
            return Formula::congruence(atom_coefficients(diff), -diff.constant, modulus);
        }

        // Normalize `left cmp right` to atoms over diff = left - right:
        // diff.coefficients . x  cmp  -diff.constant.
        const Linear diff = subtract(left, right);
        const std::vector<std::int64_t> coefficients = atom_coefficients(diff);
        const std::int64_t bound = -diff.constant;
        switch (cmp) {
            case Cmp::kLt:
                return Formula::threshold(coefficients, bound);
            case Cmp::kLe:
                return Formula::at_most(coefficients, bound);
            case Cmp::kGt: {
                // sum > b  <=>  not (sum <= b).
                return Formula::negation(Formula::at_most(coefficients, bound));
            }
            case Cmp::kGe:
                return Formula::at_least(coefficients, bound);
            case Cmp::kEq:
                return Formula::equals(coefficients, bound);
            case Cmp::kNe:
                return Formula::negation(Formula::equals(coefficients, bound));
        }
        fail("unreachable comparison");
    }

    Formula parse_unary() {
        if (consume("!")) return Formula::negation(parse_unary());
        if (consume("(")) {
            Formula inner = parse_formula();
            if (!consume(")")) fail("expected ')'");
            return inner;
        }
        return parse_atom();
    }

    Formula parse_conjunction() {
        Formula result = parse_unary();
        while (consume("&")) result = Formula::conjunction(result, parse_unary());
        return result;
    }

    Formula parse_formula() {
        Formula result = parse_conjunction();
        while (consume("|")) result = Formula::disjunction(result, parse_conjunction());
        return result;
    }

    const std::string& text_;
    std::size_t position_ = 0;
};

}  // namespace

Formula parse_formula(const std::string& text) {
    require(!text.empty(), "parse_formula: empty input");
    return Parser(text).parse();
}

}  // namespace popproto
