// The Theorem 5 / Corollary 3 compiler: Presburger formulas to protocols.
//
// Every quantifier-free formula over threshold and congruence atoms is
// compiled bottom-up: atoms become the Lemma 5 protocols, Boolean
// connectives become Lemma 3 products (with negation as an output
// relabeling).  The resulting protocol stably computes the formula under the
// symbol-count input convention: input symbol sigma_i stands for variable
// x_i, and x_i is the number of agents that read sigma_i.
//
// compile_integer_convention additionally performs the Corollary 3
// translation: inputs are k-vectors of integers (one per agent) and the
// formula is evaluated on their population-wide sums.

#ifndef POPPROTO_PRESBURGER_COMPILER_H
#define POPPROTO_PRESBURGER_COMPILER_H

#include <memory>
#include <vector>

#include "core/tabulated_protocol.h"
#include "presburger/formula.h"

namespace popproto {

/// Compiles `formula` into a protocol with `num_input_symbols` input symbols
/// (default 0 = formula.num_variables()).  Extra symbols beyond the
/// formula's variables have coefficient 0 everywhere, i.e. they are counted
/// but do not influence the verdict.
std::unique_ptr<TabulatedProtocol> compile_formula(const Formula& formula,
                                                   std::size_t num_input_symbols = 0);

/// Corollary 3: compiles `formula` over variables y_1..y_k for the
/// integer-based input convention.  Each input symbol is one of
/// `token_vectors` (a k-vector of integers assigned to an agent); the
/// protocol stably computes formula(sum of assigned vectors).
std::unique_ptr<TabulatedProtocol> compile_integer_convention(
    const Formula& formula, const std::vector<std::vector<std::int64_t>>& token_vectors);

}  // namespace popproto

#endif  // POPPROTO_PRESBURGER_COMPILER_H
