// Quantifier-free Presburger formulas (Sect. 4.2).
//
// By Presburger's theorem (Theorem 4 in the paper) every Presburger-definable
// predicate is expressible quantifier-free over threshold atoms
// `sum_i a_i x_i < c` and congruence atoms `sum_i a_i x_i = c (mod m)`
// combined with AND/OR/NOT.  Formula is that normal form: it is both the
// ground-truth evaluator for experiments and the input language of the
// protocol compiler (Theorem 5).

#ifndef POPPROTO_PRESBURGER_FORMULA_H
#define POPPROTO_PRESBURGER_FORMULA_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace popproto {

/// Atom `sum_i coefficients[i] * x_i < constant`.
struct ThresholdAtom {
    std::vector<std::int64_t> coefficients;
    std::int64_t constant = 0;
};

/// Atom `sum_i coefficients[i] * x_i = remainder (mod modulus)`, modulus >= 2.
struct CongruenceAtom {
    std::vector<std::int64_t> coefficients;
    std::int64_t remainder = 0;
    std::int64_t modulus = 2;
};

/// Immutable quantifier-free Presburger formula over non-negative integer
/// variables x_0..x_{k-1}.  Cheap to copy (shared subtrees).
class Formula {
public:
    enum class Kind { kThreshold, kCongruence, kAnd, kOr, kNot };

    /// sum_i coefficients[i] x_i < constant.
    static Formula threshold(std::vector<std::int64_t> coefficients, std::int64_t constant);

    /// sum_i coefficients[i] x_i = remainder (mod modulus); modulus >= 2.
    static Formula congruence(std::vector<std::int64_t> coefficients, std::int64_t remainder,
                              std::int64_t modulus);

    /// Derived comparisons, rewritten into threshold atoms as in the
    /// Theorem 5 proof (equality becomes a conjunction of two thresholds).
    static Formula at_most(std::vector<std::int64_t> coefficients, std::int64_t constant);
    static Formula at_least(std::vector<std::int64_t> coefficients, std::int64_t constant);
    static Formula equals(std::vector<std::int64_t> coefficients, std::int64_t constant);

    static Formula conjunction(Formula left, Formula right);
    static Formula disjunction(Formula left, Formula right);
    static Formula negation(Formula child);

    Kind kind() const;

    /// Accessors; each requires the matching kind.  Subformulas are returned
    /// by value; Formula is a cheap shared handle to an immutable tree.
    const ThresholdAtom& threshold_atom() const;
    const CongruenceAtom& congruence_atom() const;
    Formula left() const;
    Formula right() const;
    Formula child() const;

    /// Number of variables: the longest coefficient vector in any atom.
    std::size_t num_variables() const;

    /// Evaluates the formula; `values` must cover num_variables() entries.
    bool evaluate(const std::vector<std::int64_t>& values) const;

    /// Substitution for the integer input convention (Corollary 3): variable
    /// x_j is replaced by sum_v vectors[v][j] * z_v, yielding a formula over
    /// the token-count variables z_0..z_{|vectors|-1}.  Every vector must
    /// have num_variables() components.
    Formula substitute_tokens(const std::vector<std::vector<std::int64_t>>& vectors) const;

    /// Human-readable rendering, e.g. "((2 x0 - x1 < 3) & !(x0 = 1 mod 2))".
    std::string to_string() const;

    /// Total number of atoms (threshold + congruence) in the tree.
    std::size_t num_atoms() const;

private:
    struct Node;
    explicit Formula(std::shared_ptr<const Node> node);
    std::shared_ptr<const Node> node_;
};

}  // namespace popproto

#endif  // POPPROTO_PRESBURGER_FORMULA_H
