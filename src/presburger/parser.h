// Text syntax for quantifier-free Presburger formulas.
//
// Grammar (whitespace-insensitive):
//
//   formula  := conj { '|' conj }
//   conj     := unary { '&' unary }
//   unary    := '!' unary | '(' formula ')' | atom
//   atom     := linear cmp linear                      comparison atom
//             | linear '=' linear 'mod' integer        congruence atom
//   cmp      := '<' | '<=' | '>' | '>=' | '==' | '=' | '!='
//   linear   := ['-'] term { ('+' | '-') term }
//   term     := integer [ '*' ] variable | integer | variable
//   variable := 'x' digits
//
// Both sides of an atom may be arbitrary linear expressions with constants;
// the parser normalizes them into the Formula atom forms exactly as the
// proof of Theorem 5 does (e.g. `a = b` becomes `a <= b & a >= b`, and
// `a != b` its negation).
//
// Examples:  "x0 - 19*x1 < 1",  "2 x0 + 3 = x1 mod 5",
//            "!(x0 < x1) & (x0 + x1 = 0 mod 2)".

#ifndef POPPROTO_PRESBURGER_PARSER_H
#define POPPROTO_PRESBURGER_PARSER_H

#include <string>

#include "presburger/formula.h"

namespace popproto {

/// Parses `text` into a Formula.  Throws std::invalid_argument with a
/// position-annotated message on malformed input.
Formula parse_formula(const std::string& text);

}  // namespace popproto

#endif  // POPPROTO_PRESBURGER_PARSER_H
