#include "presburger/language.h"

#include "analysis/stable_computation.h"
#include "core/require.h"

namespace popproto {

std::vector<std::uint64_t> parikh_image(const std::vector<Symbol>& word,
                                        std::size_t alphabet_size) {
    require(alphabet_size > 0, "parikh_image: empty alphabet");
    std::vector<std::uint64_t> counts(alphabet_size, 0);
    for (Symbol symbol : word) {
        require(symbol < alphabet_size, "parikh_image: symbol out of range");
        ++counts[symbol];
    }
    return counts;
}

namespace {

bool word_verdict(const TabulatedProtocol& protocol, const std::vector<Symbol>& word,
                  bool expected, std::size_t max_configs) {
    require(protocol.num_output_symbols() == 2, "language test: Boolean outputs required");
    if (word.empty()) return false;
    // Lemma 2: acceptance depends only on the Parikh image, i.e. on the
    // multiset I(word).
    const auto counts = parikh_image(word, protocol.num_input_symbols());
    const auto initial = CountConfiguration::from_input_counts(protocol, counts);
    return stably_computes_bool(protocol, initial, expected, max_configs);
}

}  // namespace

bool accepts_word(const TabulatedProtocol& protocol, const std::vector<Symbol>& word,
                  std::size_t max_configs) {
    return word_verdict(protocol, word, true, max_configs);
}

bool rejects_word(const TabulatedProtocol& protocol, const std::vector<Symbol>& word,
                  std::size_t max_configs) {
    return word_verdict(protocol, word, false, max_configs);
}

}  // namespace popproto
