#include "presburger/formula.h"

#include <algorithm>
#include <utility>

#include "core/require.h"

namespace popproto {

struct Formula::Node {
    Kind kind;
    ThresholdAtom threshold;
    CongruenceAtom congruence;
    std::shared_ptr<const Node> left;
    std::shared_ptr<const Node> right;
};

Formula::Formula(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

Formula Formula::threshold(std::vector<std::int64_t> coefficients, std::int64_t constant) {
    require(!coefficients.empty(), "Formula::threshold: no variables");
    auto node = std::make_shared<Node>();
    node->kind = Kind::kThreshold;
    node->threshold = ThresholdAtom{std::move(coefficients), constant};
    return Formula(std::move(node));
}

Formula Formula::congruence(std::vector<std::int64_t> coefficients, std::int64_t remainder,
                            std::int64_t modulus) {
    require(!coefficients.empty(), "Formula::congruence: no variables");
    require(modulus >= 2, "Formula::congruence: modulus must be at least 2");
    auto node = std::make_shared<Node>();
    node->kind = Kind::kCongruence;
    node->congruence = CongruenceAtom{std::move(coefficients), remainder, modulus};
    return Formula(std::move(node));
}

Formula Formula::at_most(std::vector<std::int64_t> coefficients, std::int64_t constant) {
    return threshold(std::move(coefficients), constant + 1);
}

Formula Formula::at_least(std::vector<std::int64_t> coefficients, std::int64_t constant) {
    // sum >= c  <=>  -sum < -c + 1.
    std::vector<std::int64_t> negated(coefficients.size());
    std::transform(coefficients.begin(), coefficients.end(), negated.begin(),
                   [](std::int64_t a) { return -a; });
    return threshold(std::move(negated), -constant + 1);
}

Formula Formula::equals(std::vector<std::int64_t> coefficients, std::int64_t constant) {
    // Build both atoms from explicit copies: argument evaluation order is
    // unspecified, so a move in one argument must not drain the other.
    Formula upper = at_most(coefficients, constant);
    Formula lower = at_least(std::move(coefficients), constant);
    return conjunction(std::move(upper), std::move(lower));
}

Formula Formula::conjunction(Formula left, Formula right) {
    auto node = std::make_shared<Node>();
    node->kind = Kind::kAnd;
    node->left = std::move(left.node_);
    node->right = std::move(right.node_);
    return Formula(std::move(node));
}

Formula Formula::disjunction(Formula left, Formula right) {
    auto node = std::make_shared<Node>();
    node->kind = Kind::kOr;
    node->left = std::move(left.node_);
    node->right = std::move(right.node_);
    return Formula(std::move(node));
}

Formula Formula::negation(Formula child) {
    auto node = std::make_shared<Node>();
    node->kind = Kind::kNot;
    node->left = std::move(child.node_);
    return Formula(std::move(node));
}

Formula::Kind Formula::kind() const { return node_->kind; }

const ThresholdAtom& Formula::threshold_atom() const {
    require(node_->kind == Kind::kThreshold, "Formula: not a threshold atom");
    return node_->threshold;
}

const CongruenceAtom& Formula::congruence_atom() const {
    require(node_->kind == Kind::kCongruence, "Formula: not a congruence atom");
    return node_->congruence;
}

Formula Formula::left() const {
    require(node_->kind == Kind::kAnd || node_->kind == Kind::kOr, "Formula: not binary");
    return Formula(node_->left);
}

Formula Formula::right() const {
    require(node_->kind == Kind::kAnd || node_->kind == Kind::kOr, "Formula: not binary");
    return Formula(node_->right);
}

Formula Formula::child() const {
    require(node_->kind == Kind::kNot, "Formula: not a negation");
    return Formula(node_->left);
}

std::size_t Formula::num_variables() const {
    switch (kind()) {
        case Kind::kThreshold:
            return threshold_atom().coefficients.size();
        case Kind::kCongruence:
            return congruence_atom().coefficients.size();
        case Kind::kAnd:
        case Kind::kOr:
            return std::max(left().num_variables(), right().num_variables());
        case Kind::kNot:
            return child().num_variables();
    }
    return 0;
}

bool Formula::evaluate(const std::vector<std::int64_t>& values) const {
    switch (kind()) {
        case Kind::kThreshold: {
            const ThresholdAtom& atom = threshold_atom();
            require(values.size() >= atom.coefficients.size(), "Formula::evaluate: too few values");
            std::int64_t sum = 0;
            for (std::size_t i = 0; i < atom.coefficients.size(); ++i)
                sum += atom.coefficients[i] * values[i];
            return sum < atom.constant;
        }
        case Kind::kCongruence: {
            const CongruenceAtom& atom = congruence_atom();
            require(values.size() >= atom.coefficients.size(), "Formula::evaluate: too few values");
            std::int64_t sum = 0;
            for (std::size_t i = 0; i < atom.coefficients.size(); ++i)
                sum += atom.coefficients[i] * values[i];
            const std::int64_t m = atom.modulus;
            const auto reduce = [m](std::int64_t v) { return ((v % m) + m) % m; };
            return reduce(sum) == reduce(atom.remainder);
        }
        case Kind::kAnd:
            return left().evaluate(values) && right().evaluate(values);
        case Kind::kOr:
            return left().evaluate(values) || right().evaluate(values);
        case Kind::kNot:
            return !child().evaluate(values);
    }
    ensure(false, "Formula::evaluate: unknown kind");
    return false;
}

std::size_t Formula::num_atoms() const {
    switch (kind()) {
        case Kind::kThreshold:
        case Kind::kCongruence:
            return 1;
        case Kind::kAnd:
        case Kind::kOr:
            return left().num_atoms() + right().num_atoms();
        case Kind::kNot:
            return child().num_atoms();
    }
    return 0;
}

Formula Formula::substitute_tokens(
    const std::vector<std::vector<std::int64_t>>& vectors) const {
    require(!vectors.empty(), "substitute_tokens: empty token alphabet");
    const std::size_t arity = vectors.front().size();
    for (const auto& vector : vectors)
        require(vector.size() == arity, "substitute_tokens: ragged token vectors");
    require(num_variables() <= arity, "substitute_tokens: vector arity too small");

    const auto substitute_coefficients = [&](const std::vector<std::int64_t>& coefficients) {
        std::vector<std::int64_t> result(vectors.size(), 0);
        for (std::size_t v = 0; v < vectors.size(); ++v)
            for (std::size_t j = 0; j < coefficients.size(); ++j)
                result[v] += coefficients[j] * vectors[v][j];
        return result;
    };

    switch (kind()) {
        case Kind::kThreshold: {
            const ThresholdAtom& atom = threshold_atom();
            return threshold(substitute_coefficients(atom.coefficients), atom.constant);
        }
        case Kind::kCongruence: {
            const CongruenceAtom& atom = congruence_atom();
            return congruence(substitute_coefficients(atom.coefficients), atom.remainder,
                              atom.modulus);
        }
        case Kind::kAnd:
            return conjunction(left().substitute_tokens(vectors),
                               right().substitute_tokens(vectors));
        case Kind::kOr:
            return disjunction(left().substitute_tokens(vectors),
                               right().substitute_tokens(vectors));
        case Kind::kNot:
            return negation(child().substitute_tokens(vectors));
    }
    ensure(false, "substitute_tokens: unknown kind");
    return *this;
}

namespace {

std::string linear_to_string(const std::vector<std::int64_t>& coefficients) {
    std::string text;
    bool first = true;
    for (std::size_t i = 0; i < coefficients.size(); ++i) {
        const std::int64_t a = coefficients[i];
        if (a == 0) continue;
        if (!first) text += (a > 0) ? " + " : " - ";
        if (first && a < 0) text += "-";
        const std::int64_t magnitude = a > 0 ? a : -a;
        if (magnitude != 1) text += std::to_string(magnitude) + " ";
        text += "x" + std::to_string(i);
        first = false;
    }
    if (first) text = "0";
    return text;
}

}  // namespace

std::string Formula::to_string() const {
    switch (kind()) {
        case Kind::kThreshold: {
            const ThresholdAtom& atom = threshold_atom();
            return "(" + linear_to_string(atom.coefficients) + " < " +
                   std::to_string(atom.constant) + ")";
        }
        case Kind::kCongruence: {
            const CongruenceAtom& atom = congruence_atom();
            return "(" + linear_to_string(atom.coefficients) + " = " +
                   std::to_string(atom.remainder) + " mod " + std::to_string(atom.modulus) + ")";
        }
        case Kind::kAnd:
            return "(" + left().to_string() + " & " + right().to_string() + ")";
        case Kind::kOr:
            return "(" + left().to_string() + " | " + right().to_string() + ")";
        case Kind::kNot:
            return "!" + child().to_string();
    }
    return "?";
}

}  // namespace popproto
