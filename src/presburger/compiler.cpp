#include "presburger/compiler.h"

#include <algorithm>

#include "core/combinators.h"
#include "core/require.h"
#include "presburger/atom_protocols.h"

namespace popproto {

namespace {

std::vector<std::int64_t> padded(const std::vector<std::int64_t>& coefficients,
                                 std::size_t num_input_symbols) {
    std::vector<std::int64_t> result = coefficients;
    result.resize(num_input_symbols, 0);
    return result;
}

std::unique_ptr<TabulatedProtocol> compile_node(const Formula& formula,
                                                std::size_t num_input_symbols) {
    switch (formula.kind()) {
        case Formula::Kind::kThreshold: {
            const ThresholdAtom& atom = formula.threshold_atom();
            return make_threshold_protocol(padded(atom.coefficients, num_input_symbols),
                                           atom.constant);
        }
        case Formula::Kind::kCongruence: {
            const CongruenceAtom& atom = formula.congruence_atom();
            return make_remainder_protocol(padded(atom.coefficients, num_input_symbols),
                                           atom.remainder, atom.modulus);
        }
        case Formula::Kind::kAnd: {
            const auto left = compile_node(formula.left(), num_input_symbols);
            const auto right = compile_node(formula.right(), num_input_symbols);
            return make_product_protocol(
                *left, *right,
                [](Symbol a, Symbol b) {
                    return (a == kOutputTrue && b == kOutputTrue) ? kOutputTrue : kOutputFalse;
                },
                2);
        }
        case Formula::Kind::kOr: {
            const auto left = compile_node(formula.left(), num_input_symbols);
            const auto right = compile_node(formula.right(), num_input_symbols);
            return make_product_protocol(
                *left, *right,
                [](Symbol a, Symbol b) {
                    return (a == kOutputTrue || b == kOutputTrue) ? kOutputTrue : kOutputFalse;
                },
                2);
        }
        case Formula::Kind::kNot: {
            const auto child = compile_node(formula.child(), num_input_symbols);
            return make_negation_protocol(*child);
        }
    }
    ensure(false, "compile_node: unknown formula kind");
    return nullptr;
}

}  // namespace

std::unique_ptr<TabulatedProtocol> compile_formula(const Formula& formula,
                                                   std::size_t num_input_symbols) {
    const std::size_t variables = formula.num_variables();
    if (num_input_symbols == 0) num_input_symbols = variables;
    require(num_input_symbols >= variables,
            "compile_formula: fewer input symbols than formula variables");
    return compile_node(formula, num_input_symbols);
}

std::unique_ptr<TabulatedProtocol> compile_integer_convention(
    const Formula& formula, const std::vector<std::vector<std::int64_t>>& token_vectors) {
    const Formula substituted = formula.substitute_tokens(token_vectors);
    return compile_formula(substituted, token_vectors.size());
}

}  // namespace popproto
