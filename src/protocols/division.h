// Integer division protocol (the Sect. 3.4 example, generalized).
//
// The paper's example computes floor(m / 3) where m is the number of agents
// with input 1, representing the quotient diffusely: each agent's state is a
// pair (remainder_share, quotient_bit) and the output, under the
// integer-based output convention, is the population-wide sum of quotient
// bits.  We generalize the divisor: remainder shares are consolidated toward
// the initiator, and whenever a pair's combined share reaches the divisor it
// is exchanged for one quotient bit deposited on the responder (which then
// becomes inert, exactly like the paper's (0, 1) states).
//
// Invariant (tested): m = (sum of remainder shares) + divisor * (sum of
// quotient bits) throughout every execution.

#ifndef POPPROTO_PROTOCOLS_DIVISION_H
#define POPPROTO_PROTOCOLS_DIVISION_H

#include <cstdint>
#include <memory>

#include "core/conventions.h"
#include "core/tabulated_protocol.h"

namespace popproto {

/// Builds the divide-by-`divisor` protocol (divisor >= 2).
/// Inputs: symbol 0 -> state (0, 0); symbol 1 -> state (1, 0).
/// Outputs: O((r, j)) = j; the represented result is the sum of outputs.
std::unique_ptr<TabulatedProtocol> make_division_protocol(std::uint32_t divisor);

/// The paper's closing remark in Sect. 3.4: "if the output map were changed
/// to the identity ... this protocol would compute the ordered pair
/// (m mod 3, floor(m/3))".  This variant does exactly that: same dynamics,
/// but every state is its own output symbol, so under the integer-based
/// output convention with symbol values (r, j) the population represents
/// the pair (m mod divisor, floor(m / divisor)).
std::unique_ptr<TabulatedProtocol> make_divmod_protocol(std::uint32_t divisor);

/// The matching output convention for make_divmod_protocol: output symbol
/// (r, j) carries the vector (r, j).
IntegerOutputConvention divmod_output_convention(std::uint32_t divisor);

/// Decodes the (remainder, quotient) pair represented by a configuration of
/// the division protocol: sums of the two state components.
struct DivisionReading {
    std::uint64_t remainder;
    std::uint64_t quotient;
};
DivisionReading read_division(const TabulatedProtocol& protocol,
                              const class CountConfiguration& configuration,
                              std::uint32_t divisor);

}  // namespace popproto

#endif  // POPPROTO_PROTOCOLS_DIVISION_H
