#include "protocols/epidemic.h"

#include "core/require.h"

namespace popproto {

namespace {

std::unique_ptr<TabulatedProtocol> make_epidemic(bool two_way) {
    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 2;
    tables.output_names = {"susceptible", "infected"};
    tables.input_names = {"susceptible", "infected"};
    tables.initial = {0, 1};
    tables.output = {0, 1};
    tables.state_names = {"S", "I"};
    tables.delta = {
        {0, 0},  // (S, S)
        two_way ? StatePair{1, 1} : StatePair{0, 1},  // (S, I): responder infects initiator?
        {1, 1},  // (I, S): initiator infects responder
        {1, 1},  // (I, I)
    };
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

}  // namespace

std::unique_ptr<TabulatedProtocol> make_epidemic_protocol() { return make_epidemic(true); }

std::unique_ptr<TabulatedProtocol> make_one_way_epidemic_protocol() {
    return make_epidemic(false);
}

double epidemic_expected_interactions(std::uint64_t population, std::uint64_t infected) {
    require(population >= 2, "epidemic_expected_interactions: population too small");
    require(infected >= 1 && infected <= population,
            "epidemic_expected_interactions: infected out of range");
    // From i infected, an infecting interaction occurs with probability
    // 2 i (n-i) / (n (n-1)); sum the geometric waits.
    const double n = static_cast<double>(population);
    double expected = 0.0;
    for (std::uint64_t i = infected; i < population; ++i) {
        const double d_i = static_cast<double>(i);
        expected += n * (n - 1.0) / (2.0 * d_i * (n - d_i));
    }
    return expected;
}

double one_way_epidemic_expected_interactions(std::uint64_t population,
                                              std::uint64_t infected) {
    // Only ordered pairs (I, S) infect: half the rate, double the time.
    return 2.0 * epidemic_expected_interactions(population, infected);
}

}  // namespace popproto
