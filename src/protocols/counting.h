// The "flock of birds" counting protocol (Sect. 1 and the Sect. 3.1 example).
//
// Input alphabet {0, 1}; the protocol stably computes whether at least
// `threshold` agents read input 1.  Each agent carries a saturating counter
// in [0, threshold]; when two agents meet, the initiator absorbs the
// responder's count, and if the combined count ever reaches the threshold
// both enter a permanent alert state that is copied by every agent they meet.
// The paper's count-to-five protocol is make_counting_protocol(5).

#ifndef POPPROTO_PROTOCOLS_COUNTING_H
#define POPPROTO_PROTOCOLS_COUNTING_H

#include <cstdint>
#include <memory>

#include "core/tabulated_protocol.h"

namespace popproto {

/// Input symbols for the counting protocol.
inline constexpr Symbol kInputZero = 0;
inline constexpr Symbol kInputOne = 1;

/// Builds the threshold-`threshold` counting protocol (threshold >= 1).
/// States are q_0 .. q_threshold; O(q_threshold) = true, everything else
/// false; delta(q_i, q_j) = (q_{i+j}, q_0) if i + j < threshold and
/// (q_threshold, q_threshold) otherwise.
std::unique_ptr<TabulatedProtocol> make_counting_protocol(std::uint32_t threshold);

}  // namespace popproto

#endif  // POPPROTO_PROTOCOLS_COUNTING_H
