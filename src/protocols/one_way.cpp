#include "protocols/one_way.h"

#include <string>

#include "core/require.h"

namespace popproto {

std::unique_ptr<TabulatedProtocol> make_one_way_counting_protocol(std::uint32_t threshold) {
    require(threshold >= 1, "make_one_way_counting_protocol: threshold must be positive");
    // States: level 0 (read input 0), levels 1..threshold-1, and level
    // `threshold` = permanent alert.
    const std::size_t num_states = threshold + 1;

    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 2;
    tables.output_names = {"false", "true"};
    tables.input_names = {"0", "1"};
    tables.initial = {State{0}, State{1}};

    tables.output.resize(num_states, kOutputFalse);
    tables.output[threshold] = kOutputTrue;
    for (State q = 0; q < num_states; ++q)
        tables.state_names.push_back(q == threshold ? "alert" : "level" + std::to_string(q));

    tables.delta.resize(num_states * num_states);
    for (State p = 0; p < num_states; ++p) {
        for (State q = 0; q < num_states; ++q) {
            State new_responder = q;
            if (p == threshold) {
                new_responder = static_cast<State>(threshold);  // alert spreads
            } else if (p >= 1 && p == q) {
                new_responder = static_cast<State>(q + 1);  // two distinct level-p agents
            }
            tables.delta[static_cast<std::size_t>(p) * num_states + q] =
                StatePair{p, new_responder};
        }
    }
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

bool is_one_way(const TabulatedProtocol& protocol) {
    for (State p = 0; p < protocol.num_states(); ++p)
        for (State q = 0; q < protocol.num_states(); ++q)
            if (protocol.apply_fast(p, q).initiator != p) return false;
    return true;
}

}  // namespace popproto
