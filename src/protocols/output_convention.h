// Theorem 2: output-convention transformer.
//
// A protocol B may stably compute a predicate under the *zero/non-zero*
// output convention: the answer is "true" iff at least one agent stabilizes
// to output 1.  Theorem 2 shows this is no stronger than the all-agents
// convention: the transformer below runs B in one field, runs the standard
// leader election in another, hands leadership to an output-1 agent when one
// exists, and lets every agent copy the leader's verdict.

#ifndef POPPROTO_PROTOCOLS_OUTPUT_CONVENTION_H
#define POPPROTO_PROTOCOLS_OUTPUT_CONVENTION_H

#include <memory>

#include "core/tabulated_protocol.h"

namespace popproto {

/// Builds the Theorem 2 protocol A from `zero_nonzero` (which must have
/// Boolean outputs).  A stably computes, under the all-agents convention,
/// "true" iff B stabilizes with at least one agent outputting 1.
/// States of A are triples (leader, output, q) over B's state q.
std::unique_ptr<TabulatedProtocol> make_all_agents_protocol(const Protocol& zero_nonzero);

/// The other convention mentioned at the end of Sect. 3.6: represent false
/// by the integer 0 and true by the integer 1, i.e. exactly one agent
/// outputs 1 when the predicate holds and nobody does otherwise.  Built from
/// the same leader machinery: only the (unique, migrated-to-a-witness)
/// leader ever outputs 1.  Decode with the integer output convention whose
/// symbol values are {0, 1}.
std::unique_ptr<TabulatedProtocol> make_single_witness_protocol(const Protocol& zero_nonzero);

}  // namespace popproto

#endif  // POPPROTO_PROTOCOLS_OUTPUT_CONVENTION_H
