#include "protocols/leader_election.h"

#include "core/require.h"

namespace popproto {

namespace {
constexpr State kFollower = 0;
constexpr State kLeader = 1;
}  // namespace

std::unique_ptr<TabulatedProtocol> make_leader_election_protocol() {
    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 2;
    tables.output_names = {"follower", "leader"};
    tables.input_names = {"agent"};
    tables.initial = {kLeader};
    tables.output = {0, 1};
    tables.state_names = {"follower", "leader"};
    tables.delta = {
        StatePair{kFollower, kFollower},  // (F, F) -> (F, F)
        StatePair{kFollower, kLeader},    // (F, L) -> (F, L)
        StatePair{kLeader, kFollower},    // (L, F) -> (L, F)
        StatePair{kLeader, kFollower},    // (L, L) -> (L, F): responder abdicates
    };
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

std::uint64_t count_leaders(const CountConfiguration& configuration) {
    require(configuration.num_states() == 2, "count_leaders: not a leader election configuration");
    return configuration.count(kLeader);
}

double leader_election_expected_interactions(std::uint64_t population) {
    require(population >= 1, "leader_election_expected_interactions: empty population");
    // sum_{i=2}^{n} C(n,2) / C(i,2) telescopes to (n-1)^2 (Sect. 6).
    const double n = static_cast<double>(population);
    return (n - 1.0) * (n - 1.0);
}

}  // namespace popproto
