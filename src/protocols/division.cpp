#include "protocols/division.h"

#include <string>

#include "core/configuration.h"
#include "core/require.h"

namespace popproto {

namespace {

/// State encoding: (remainder r in [0, divisor), quotient bit j in {0, 1})
/// as r * 2 + j.
State encode(std::uint32_t r, std::uint32_t j) { return static_cast<State>(r * 2 + j); }
std::uint32_t remainder_of(State q) { return q / 2; }
std::uint32_t quotient_of(State q) { return q % 2; }

}  // namespace

std::unique_ptr<TabulatedProtocol> make_division_protocol(std::uint32_t divisor) {
    require(divisor >= 2, "make_division_protocol: divisor must be at least 2");
    const std::size_t num_states = static_cast<std::size_t>(divisor) * 2;

    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 2;
    tables.output_names = {"0", "1"};
    tables.input_names = {"0", "1"};
    tables.initial = {encode(0, 0), encode(1, 0)};

    tables.output.resize(num_states);
    tables.state_names.resize(num_states);
    for (State q = 0; q < num_states; ++q) {
        tables.output[q] = quotient_of(q);
        tables.state_names[q] =
            "(" + std::to_string(remainder_of(q)) + "," + std::to_string(quotient_of(q)) + ")";
    }

    tables.delta.resize(num_states * num_states);
    for (State p = 0; p < num_states; ++p) {
        for (State q = 0; q < num_states; ++q) {
            StatePair result{p, q};
            // Remainder shares live only on quotient-free agents, exactly as
            // in the paper's three-way example: agents holding a quotient
            // bit are inert.
            if (quotient_of(p) == 0 && quotient_of(q) == 0) {
                const std::uint32_t sum = remainder_of(p) + remainder_of(q);
                if (sum >= divisor) {
                    // Exchange `divisor` remainder units for one quotient bit
                    // deposited on the responder.
                    result = {encode(sum - divisor, 0), encode(0, 1)};
                } else if (remainder_of(q) > 0) {
                    // Consolidate the responder's share into the initiator.
                    result = {encode(sum, 0), encode(0, 0)};
                }
            }
            tables.delta[static_cast<std::size_t>(p) * num_states + q] = result;
        }
    }
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

std::unique_ptr<TabulatedProtocol> make_divmod_protocol(std::uint32_t divisor) {
    const auto division = make_division_protocol(divisor);
    // Same transition structure; each state becomes its own output symbol
    // (the "identity output map" of the Sect. 3.4 remark).
    const std::size_t num_states = division->num_states();
    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = num_states;
    for (Symbol x = 0; x < division->num_input_symbols(); ++x) {
        tables.initial.push_back(division->initial_state(x));
        tables.input_names.push_back(division->input_name(x));
    }
    for (State q = 0; q < num_states; ++q) {
        tables.output.push_back(q);
        tables.state_names.push_back(division->state_name(q));
        tables.output_names.push_back(division->state_name(q));
    }
    tables.delta.reserve(num_states * num_states);
    for (State p = 0; p < num_states; ++p)
        for (State q = 0; q < num_states; ++q) tables.delta.push_back(division->apply_fast(p, q));
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

IntegerOutputConvention divmod_output_convention(std::uint32_t divisor) {
    require(divisor >= 2, "divmod_output_convention: divisor must be at least 2");
    IntegerOutputConvention convention;
    convention.symbol_values.reserve(static_cast<std::size_t>(divisor) * 2);
    for (State q = 0; q < static_cast<State>(divisor) * 2; ++q) {
        convention.symbol_values.push_back(
            {static_cast<std::int64_t>(remainder_of(q)), static_cast<std::int64_t>(quotient_of(q))});
    }
    return convention;
}

DivisionReading read_division(const TabulatedProtocol& protocol,
                              const CountConfiguration& configuration, std::uint32_t divisor) {
    require(configuration.num_states() == protocol.num_states(),
            "read_division: configuration does not match protocol");
    require(protocol.num_states() == static_cast<std::size_t>(divisor) * 2,
            "read_division: protocol was built with a different divisor");
    DivisionReading reading{0, 0};
    for (State q = 0; q < configuration.num_states(); ++q) {
        const std::uint64_t agents = configuration.count(q);
        reading.remainder += agents * remainder_of(q);
        reading.quotient += agents * quotient_of(q);
    }
    return reading;
}

}  // namespace popproto
