// Pairwise leader election (used throughout Sect. 4-6).
//
// Every agent starts as a leader; when two leaders meet, the responder
// abdicates.  Fairness guarantees a unique leader is eventually reached, and
// under uniform random pairing the expected number of interactions is
// exactly sum_{i=2}^{n} C(n,2)/C(i,2) = (n-1)^2 (Sect. 6), the claim
// reproduced by bench_leader_election.

#ifndef POPPROTO_PROTOCOLS_LEADER_ELECTION_H
#define POPPROTO_PROTOCOLS_LEADER_ELECTION_H

#include <memory>

#include "core/configuration.h"
#include "core/tabulated_protocol.h"

namespace popproto {

/// State/output 0 = follower, 1 = leader.  The single input symbol maps to
/// the leader state.
std::unique_ptr<TabulatedProtocol> make_leader_election_protocol();

/// Number of leaders in a configuration of the leader election protocol.
std::uint64_t count_leaders(const CountConfiguration& configuration);

/// Closed form (n-1)^2 for the expected interactions to elect one leader.
double leader_election_expected_interactions(std::uint64_t population);

}  // namespace popproto

#endif  // POPPROTO_PROTOCOLS_LEADER_ELECTION_H
