#include "protocols/counting.h"

#include <string>

#include "core/require.h"

namespace popproto {

std::unique_ptr<TabulatedProtocol> make_counting_protocol(std::uint32_t threshold) {
    require(threshold >= 1, "make_counting_protocol: threshold must be positive");
    const std::size_t num_states = threshold + 1;  // q_0 .. q_threshold

    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 2;
    tables.output_names = {"false", "true"};
    tables.input_names = {"0", "1"};
    tables.initial = {State{0}, State{1}};
    if (threshold == 1) tables.initial[kInputOne] = State{1};  // q_1 is the alert state itself

    tables.output.resize(num_states, kOutputFalse);
    tables.output[threshold] = kOutputTrue;
    for (State q = 0; q < num_states; ++q) tables.state_names.push_back("q" + std::to_string(q));

    tables.delta.resize(num_states * num_states);
    for (State i = 0; i < num_states; ++i) {
        for (State j = 0; j < num_states; ++j) {
            const std::uint64_t sum = static_cast<std::uint64_t>(i) + j;
            StatePair result{};
            if (sum >= threshold) {
                result = {static_cast<State>(threshold), static_cast<State>(threshold)};
            } else {
                result = {static_cast<State>(sum), State{0}};
            }
            tables.delta[static_cast<std::size_t>(i) * num_states + j] = result;
        }
    }
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

}  // namespace popproto
