// One-way (responder-only) threshold protocol (Sect. 8 discussion).
//
// The paper remarks that even if delta is restricted to change only the
// responder's state, "there are still protocols to decide whether the number
// of 1's in the input is at least k".  This module implements the classic
// level construction: every 1-agent starts at level 1, and a responder at
// level L that hears from an initiator also at level L advances to L + 1.
// Two agents at the same level are necessarily distinct, so level k is
// reachable iff at least k agents read input 1 (verified exhaustively in the
// tests via the exact analyzer).  Reaching level k raises a permanent alert
// that spreads initiator -> responder.

#ifndef POPPROTO_PROTOCOLS_ONE_WAY_H
#define POPPROTO_PROTOCOLS_ONE_WAY_H

#include <cstdint>
#include <memory>

#include "core/tabulated_protocol.h"

namespace popproto {

/// One-way protocol stably computing "at least `threshold` agents read 1"
/// (threshold >= 1).  Every transition leaves the initiator unchanged.
std::unique_ptr<TabulatedProtocol> make_one_way_counting_protocol(std::uint32_t threshold);

/// True iff every transition of `protocol` leaves the initiator unchanged
/// (the defining property of one-way communication).
bool is_one_way(const TabulatedProtocol& protocol);

}  // namespace popproto

#endif  // POPPROTO_PROTOCOLS_ONE_WAY_H
