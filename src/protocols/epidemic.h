// One-bit epidemics (the broadcast primitive).
//
// Spreading a bit to everyone is the workhorse inside Theorems 2, 5, and 8:
// the alert phase of the counting protocol, the leader distributing the
// verdict, and the final output propagation are all epidemics.  Under
// uniform random pairing, completing an epidemic from one infected agent
// takes exactly sum_{i=1}^{n-1} n(n-1) / (2 i (n-i)) expected interactions
// (two-way: either role infects), which is Theta(n log n) - the source of
// the log factor in Theorem 8.  The one-way variant (only the initiator
// infects the responder) is exactly twice as slow.  Both closed forms are
// verified against the exact Markov solver in the tests.

#ifndef POPPROTO_PROTOCOLS_EPIDEMIC_H
#define POPPROTO_PROTOCOLS_EPIDEMIC_H

#include <cstdint>
#include <memory>

#include "core/tabulated_protocol.h"

namespace popproto {

/// Two-way epidemic: any meeting of an infected and a susceptible agent
/// infects the susceptible one.  Inputs: 0 = susceptible, 1 = infected;
/// outputs mirror the states.
std::unique_ptr<TabulatedProtocol> make_epidemic_protocol();

/// One-way epidemic: only an infected *initiator* infects its responder.
std::unique_ptr<TabulatedProtocol> make_one_way_epidemic_protocol();

/// Closed form for the expected interactions of the two-way epidemic from
/// `infected` infected agents out of `population` until everyone is
/// infected.
double epidemic_expected_interactions(std::uint64_t population, std::uint64_t infected);

/// Same for the one-way epidemic (exactly twice the two-way value).
double one_way_epidemic_expected_interactions(std::uint64_t population,
                                              std::uint64_t infected);

}  // namespace popproto

#endif  // POPPROTO_PROTOCOLS_EPIDEMIC_H
