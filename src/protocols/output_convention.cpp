#include "protocols/output_convention.h"

#include <string>

#include "core/require.h"

namespace popproto {

namespace {

struct Layout {
    std::size_t base_states;

    State encode(bool leader, bool output, State q) const {
        return static_cast<State>(((leader ? 2u : 0u) + (output ? 1u : 0u)) * base_states + q);
    }
    bool leader(State s) const { return s / base_states >= 2; }
    bool output(State s) const { return (s / base_states) % 2 == 1; }
    State base(State s) const { return static_cast<State>(s % base_states); }
    std::size_t num_states() const { return 4 * base_states; }
};

}  // namespace

std::unique_ptr<TabulatedProtocol> make_all_agents_protocol(const Protocol& zero_nonzero) {
    require(zero_nonzero.num_output_symbols() == 2,
            "make_all_agents_protocol: base protocol must have Boolean outputs");
    const auto base = TabulatedProtocol::tabulate(zero_nonzero);
    const Layout layout{base->num_states()};

    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 2;
    tables.output_names = {"false", "true"};

    for (Symbol x = 0; x < base->num_input_symbols(); ++x) {
        const State q0 = base->initial_state(x);
        // Everyone starts as a leader; the initial verdict is the agent's own
        // current B-output so that singleton populations are answered
        // correctly without any interaction.
        tables.initial.push_back(layout.encode(true, base->output_fast(q0) == kOutputTrue, q0));
        tables.input_names.push_back(base->input_name(x));
    }

    tables.output.resize(layout.num_states());
    tables.state_names.resize(layout.num_states());
    for (State s = 0; s < layout.num_states(); ++s) {
        tables.output[s] = layout.output(s) ? kOutputTrue : kOutputFalse;
        tables.state_names[s] = std::string(layout.leader(s) ? "L" : "-") +
                                (layout.output(s) ? "1" : "0") + ":" +
                                base->state_name(layout.base(s));
    }

    tables.delta.resize(layout.num_states() * layout.num_states());
    for (State sp = 0; sp < layout.num_states(); ++sp) {
        for (State sq = 0; sq < layout.num_states(); ++sq) {
            // Step 1: run B on the embedded states.
            const StatePair inner = base->apply_fast(layout.base(sp), layout.base(sq));
            const bool init_out = base->output_fast(inner.initiator) == kOutputTrue;
            const bool resp_out = base->output_fast(inner.responder) == kOutputTrue;

            // Step 2: leader-bit dynamics.
            bool init_leader = layout.leader(sp);
            bool resp_leader = layout.leader(sq);
            if (init_leader && resp_leader) {
                resp_leader = false;  // standard leader election
            } else if (init_leader && !resp_leader) {
                // Swap when a non-leader outputting 1 meets a leader
                // outputting 0 (so leadership migrates to a witness of 1).
                if (resp_out && !init_out) {
                    init_leader = false;
                    resp_leader = true;
                }
            } else if (!init_leader && resp_leader) {
                if (init_out && !resp_out) {
                    init_leader = true;
                    resp_leader = false;
                }
            }

            // Step 3: output bits.  A leader always tracks its own B-output;
            // a non-leader meeting a leader copies the leader's fresh bit.
            bool init_bit = layout.output(sp);
            bool resp_bit = layout.output(sq);
            if (init_leader) {
                init_bit = init_out;
                resp_bit = init_bit;
            } else if (resp_leader) {
                resp_bit = resp_out;
                init_bit = resp_bit;
            }

            tables.delta[static_cast<std::size_t>(sp) * layout.num_states() + sq] =
                StatePair{layout.encode(init_leader, init_bit, inner.initiator),
                          layout.encode(resp_leader, resp_bit, inner.responder)};
        }
    }
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

std::unique_ptr<TabulatedProtocol> make_single_witness_protocol(const Protocol& zero_nonzero) {
    // Same dynamics as the Theorem 2 construction; only the output function
    // changes: an agent outputs 1 iff it is a leader whose tracked verdict
    // is 1.  After stabilization there is exactly one leader, parked on a
    // witness when one exists, so the population-wide output sum is exactly
    // the predicate value (0 or 1).
    const auto all_agents = make_all_agents_protocol(zero_nonzero);
    const Layout layout{zero_nonzero.num_states()};

    const std::size_t num_states = all_agents->num_states();
    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 2;
    tables.output_names = {"0", "1"};
    for (Symbol x = 0; x < all_agents->num_input_symbols(); ++x) {
        tables.initial.push_back(all_agents->initial_state(x));
        tables.input_names.push_back(all_agents->input_name(x));
    }
    tables.output.resize(num_states);
    tables.state_names.resize(num_states);
    for (State s = 0; s < num_states; ++s) {
        tables.output[s] =
            (layout.leader(s) && layout.output(s)) ? kOutputTrue : kOutputFalse;
        tables.state_names[s] = all_agents->state_name(s);
    }
    tables.delta.reserve(num_states * num_states);
    for (State p = 0; p < num_states; ++p)
        for (State q = 0; q < num_states; ++q)
            tables.delta.push_back(all_agents->apply_fast(p, q));
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

}  // namespace popproto
