// Adversarial-but-fair pairing.
//
// The paper's fairness condition (Sect. 2) quantifies over *all* fair
// executions, but the uniform scheduler only samples the friendly ones.
// AdversarialCoverModel stress-tests a protocol against a worst-case-ish
// adversary that still provably satisfies bounded-delay cover fairness:
//
//   * time is divided into epochs of N = n(n-1) steps; each epoch plays a
//     fresh uniformly random permutation of all ordered pairs, so every
//     pair occurs exactly once per epoch and any window of 2N-1 consecutive
//     steps contains every ordered pair at least once (the cover bound);
//   * within an epoch the adversary is lazy-adaptive: before playing the
//     next pair it peeks up to `probe_window` upcoming entries and plays a
//     *null* interaction (one that leaves both agents unchanged under the
//     current configuration) when it can find one, delaying progress as
//     long as the cover invariant allows.
//
// Epoch shuffles draw from the kernel RNG stream and the permutation plus
// cursor serialize into the checkpoint's interaction_model section, so
// adversarial runs checkpoint/resume bit-identically — including cuts in
// the middle of an epoch.

#ifndef POPPROTO_SCENARIOS_ADVERSARIAL_H
#define POPPROTO_SCENARIOS_ADVERSARIAL_H

#include <cstdint>
#include <vector>

#include "core/interaction_model.h"
#include "core/tabulated_protocol.h"

namespace popproto {

class AdversarialCoverModel {
public:
    static constexpr const char* kName = "adversarial";
    static constexpr Fairness kFairness = Fairness::kBoundedCover;
    static constexpr bool kCanSilence = true;
    static constexpr bool kHasState = true;

    /// The model keeps a reference to `protocol` (it inspects deltas to
    /// find null interactions); the protocol must outlive the model.
    /// `probe_window` bounds the per-step look-ahead (0 disables probing,
    /// degenerating to a pure random-permutation cover).
    AdversarialCoverModel(const TabulatedProtocol& protocol, std::uint64_t num_agents,
                          std::uint64_t probe_window);

    const char* name() const { return kName; }
    bool checkpointable() const { return true; }
    std::uint64_t num_pairs() const { return permutation_.size(); }

    AgentPair propose_pair(Rng& rng, const std::vector<State>& states);

    void save_state(std::vector<std::uint64_t>& words) const;
    void restore_state(const std::vector<std::uint64_t>& words);

private:
    const TabulatedProtocol& protocol_;
    std::uint64_t num_agents_ = 0;
    std::uint64_t probe_window_ = 0;
    std::vector<std::uint64_t> permutation_;  // pair indices, one epoch
    std::uint64_t cursor_ = 0;                // == size() forces a reshuffle
};

static_assert(InteractionModel<AdversarialCoverModel>);

}  // namespace popproto

#endif  // POPPROTO_SCENARIOS_ADVERSARIAL_H
