// Adversarial-but-fair pairing.
//
// The paper's fairness condition (Sect. 2) quantifies over *all* fair
// executions, but the uniform scheduler only samples the friendly ones.
// AdversarialCoverModel stress-tests a protocol against a worst-case-ish
// adversary that still provably satisfies bounded-delay cover fairness:
//
//   * time is divided into epochs of N = n(n-1) steps; each epoch plays a
//     fresh uniformly random permutation of all ordered pairs, so every
//     pair occurs exactly once per epoch and any window of 2N-1 consecutive
//     steps contains every ordered pair at least once (the cover bound);
//   * within an epoch the adversary is lazy-adaptive: before playing the
//     next pair it peeks up to `probe_window` upcoming entries and plays a
//     *null* interaction (one that leaves both agents unchanged under the
//     current configuration) when it can find one, delaying progress as
//     long as the cover invariant allows.
//
// The epoch permutation is lazy — a keyed Feistel bijection of the pair
// indices (core/feistel.h) rekeyed from the kernel RNG stream each epoch —
// so the model's state is O(probe_window), not O(n^2): probe swaps, the
// only in-epoch mutations, only ever displace an entry by less than
// probe_window positions, so they live in a small ring-buffer overlay on
// top of the Feistel image until the cursor passes them.  The cursor, the
// round keys, and the live overlay serialize into the checkpoint's
// interaction_model section, so adversarial runs checkpoint/resume
// bit-identically — including cuts in the middle of an epoch.

#ifndef POPPROTO_SCENARIOS_ADVERSARIAL_H
#define POPPROTO_SCENARIOS_ADVERSARIAL_H

#include <cstdint>
#include <vector>

#include "core/feistel.h"
#include "core/interaction_model.h"
#include "core/tabulated_protocol.h"

namespace popproto {

class AdversarialCoverModel {
public:
    static constexpr const char* kName = "adversarial";
    static constexpr Fairness kFairness = Fairness::kBoundedCover;
    static constexpr bool kCanSilence = true;
    static constexpr bool kHasState = true;

    /// The model keeps a reference to `protocol` (it inspects deltas to
    /// find null interactions); the protocol must outlive the model.
    /// `probe_window` bounds the per-step look-ahead (0 disables probing,
    /// degenerating to a pure random-permutation cover).
    AdversarialCoverModel(const TabulatedProtocol& protocol, std::uint64_t num_agents,
                          std::uint64_t probe_window);

    const char* name() const { return kName; }
    bool checkpointable() const { return true; }
    std::uint64_t num_pairs() const { return num_pairs_; }

    AgentPair propose_pair(Rng& rng, const std::vector<State>& states);

    void save_state(std::vector<std::uint64_t>& words) const;
    void restore_state(const std::vector<std::uint64_t>& words);

private:
    /// One displaced permutation entry: epoch position `pos` holds pair
    /// index `value` instead of the Feistel image.  kEmpty marks a free
    /// slot (positions are < n(n-1) < 2^64).
    struct OverlayEntry {
        static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
        std::uint64_t pos = kEmpty;
        std::uint64_t value = 0;
    };

    std::uint64_t entry_at(std::uint64_t pos) const;
    void set_entry(std::uint64_t pos, std::uint64_t value);
    void clear_overlay();

    const TabulatedProtocol& protocol_;
    std::uint64_t num_agents_ = 0;
    std::uint64_t num_pairs_ = 0;
    std::uint64_t probe_window_ = 0;
    FeistelPermutation permutation_;  // this epoch's keys
    // Ring buffer (slot = pos % size) of live probe swaps; every live
    // entry's pos lies in [cursor_, cursor_ + probe_window), so
    // min(probe_window, num_pairs) slots never collide.
    std::vector<OverlayEntry> overlay_;
    std::uint64_t cursor_ = 0;  // == num_pairs forces a rekey (fresh epoch)
};

static_assert(InteractionModel<AdversarialCoverModel>);

}  // namespace popproto

#endif  // POPPROTO_SCENARIOS_ADVERSARIAL_H
