// Time-varying interaction graphs.
//
// Theorem 7's machinery (src/graphs) assumes one fixed restricted graph.
// Real sensor deployments churn: links come and go as nodes move.
// DynamicGraphModel runs a piecewise schedule of edge sets — phase k is an
// explicit directed-edge list active for `phase_length` interactions, and
// the schedule cycles.  Within a phase an edge is activated uniformly at
// random (the same sampler as simulate_on_graph); across phases only the
// {phase index, step-within-phase} counters evolve, and those two words are
// what the checkpoint's interaction_model section records — so dynamic-graph
// runs checkpoint/resume bit-identically, including cuts mid-phase.

#ifndef POPPROTO_SCENARIOS_DYNAMIC_GRAPH_H
#define POPPROTO_SCENARIOS_DYNAMIC_GRAPH_H

#include <cstdint>
#include <utility>
#include <vector>

#include "core/interaction_model.h"
#include "graphs/interaction_graph.h"

namespace popproto {

class DynamicGraphModel {
public:
    static constexpr const char* kName = "dynamic_graph";
    static constexpr Fairness kFairness = Fairness::kProbabilistic;
    /// Like the static graph engine: restricted edge sets make the multiset
    /// silence test a wasted effort (Theorem 7 protocols swap forever), so
    /// runs stop on output stability or budget.
    static constexpr bool kCanSilence = false;
    static constexpr bool kHasState = true;

    /// `phases[k]` is the directed-edge list active during phase k; phases
    /// cycle every `phase_length` interactions.  Requires at least one
    /// phase, every phase non-empty, every endpoint a distinct agent
    /// < num_agents, and phase_length >= 1.
    DynamicGraphModel(std::vector<std::vector<Edge>> phases, std::uint64_t phase_length,
                      std::uint64_t num_agents);

    const char* name() const { return kName; }
    bool checkpointable() const { return true; }
    std::uint64_t num_phases() const { return phases_.size(); }
    std::uint64_t phase() const { return phase_; }

    AgentPair propose_pair(Rng& rng, const std::vector<State>& states);

    void save_state(std::vector<std::uint64_t>& words) const;
    void restore_state(const std::vector<std::uint64_t>& words);

private:
    std::vector<std::vector<Edge>> phases_;
    std::uint64_t phase_length_ = 0;
    std::uint64_t phase_ = 0;          // active phase index
    std::uint64_t step_in_phase_ = 0;  // interactions served by this phase
};

static_assert(InteractionModel<DynamicGraphModel>);

}  // namespace popproto

#endif  // POPPROTO_SCENARIOS_DYNAMIC_GRAPH_H
