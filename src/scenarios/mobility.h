// Grid mobility: passively mobile sensors made literal.
//
// The paper's motivating story is sensors "moved around by incompressible
// forces" — a flock of birds, not a complete graph.  GridMobilityModel
// simulates that physically: every agent performs an independent lazy
// random walk on a W x H torus, and an interaction happens between agents
// that come within Chebyshev distance `radius` of each other.
//
// One interaction = one or more *time ticks*: at each tick every agent
// takes one four-neighbour step (all moves drawn from the kernel RNG, in
// agent order), then the set of ordered proximate pairs is collected; if it
// is non-empty one of them is chosen uniformly, otherwise the walk
// continues.  Random walks on a finite torus meet with probability 1, so a
// pair is always eventually proposed, and every ordered pair recurs — the
// mobility analogue of fairness.
//
// The agent positions are the model's state (n words in the checkpoint's
// interaction_model section), so mobility runs checkpoint/resume
// bit-identically, mid-walk cuts included.

#ifndef POPPROTO_SCENARIOS_MOBILITY_H
#define POPPROTO_SCENARIOS_MOBILITY_H

#include <cstdint>
#include <vector>

#include "core/interaction_model.h"

namespace popproto {

class GridMobilityModel {
public:
    static constexpr const char* kName = "grid_mobility";
    static constexpr Fairness kFairness = Fairness::kProbabilistic;
    static constexpr bool kCanSilence = true;
    static constexpr bool kHasState = true;

    /// Agents start spread row-major over the torus (agent a at cell
    /// a mod W*H).  Requires >= 2 agents and a torus of >= 2 cells;
    /// `radius` is the Chebyshev contact range (0 = same cell only).
    GridMobilityModel(std::uint64_t num_agents, std::uint64_t width, std::uint64_t height,
                      std::uint64_t radius);

    const char* name() const { return kName; }
    bool checkpointable() const { return true; }
    std::uint64_t width() const { return width_; }
    std::uint64_t height() const { return height_; }
    const std::vector<std::uint64_t>& positions() const { return positions_; }

    AgentPair propose_pair(Rng& rng, const std::vector<State>& states);

    void save_state(std::vector<std::uint64_t>& words) const;
    void restore_state(const std::vector<std::uint64_t>& words);

private:
    std::uint64_t width_ = 0;
    std::uint64_t height_ = 0;
    std::uint64_t radius_ = 0;
    std::vector<std::uint64_t> positions_;  // cell index y * width + x
    std::vector<AgentPair> contacts_;       // scratch, rebuilt per tick
    // Scratch cell index (intrusive per-cell chains), rebuilt per tick so
    // contact collection scans each agent's (2r+1)^2 neighbourhood instead
    // of all n^2 agent pairs.
    std::vector<std::uint64_t> cell_head_;      // first agent in cell, or kNoAgent
    std::vector<std::uint64_t> next_in_cell_;   // next agent in the same cell
};

static_assert(InteractionModel<GridMobilityModel>);

}  // namespace popproto

#endif  // POPPROTO_SCENARIOS_MOBILITY_H
