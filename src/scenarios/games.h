// Game-theoretic interaction rules as population protocols.
//
// "Playing With Population Protocols" (PAPERS.md) observes that pairwise
// games under imitation-style dynamics *are* population protocols: a state
// is a strategy, an encounter plays the game, and the update rule is the
// transition function.  make_game_protocol compiles a payoff matrix plus an
// update rule into a TabulatedProtocol, after which every engine, scenario
// model, observer, and checkpoint mechanism in the library applies
// unchanged.
//
// Update rules (applied symmetrically — both participants update):
//
//   * kPavlov ("win-stay, lose-shift"): a player whose payoff this
//     encounter meets its aspiration level keeps its strategy, otherwise it
//     shifts to the cyclically next one.  With the classic Prisoner's
//     Dilemma payoffs (R=3, S=0, T=5, P=1) and aspiration in (P, R], the
//     all-cooperate profile is the unique silent configuration;
//   * kImitate: a player adopts the opponent's strategy when the opponent
//     scored strictly more this encounter;
//   * kBestResponse: a player switches to the best response against the
//     opponent's current strategy (lowest index wins ties).

#ifndef POPPROTO_SCENARIOS_GAMES_H
#define POPPROTO_SCENARIOS_GAMES_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/tabulated_protocol.h"

namespace popproto {

enum class UpdateRule {
    kPavlov,
    kImitate,
    kBestResponse,
};

/// A symmetric two-player game plus its update dynamics.
struct GameSpec {
    /// Number of pure strategies k (>= 2); states, inputs, and outputs of
    /// the compiled protocol are all the strategies 0..k-1.
    std::size_t num_strategies = 0;
    /// Row-major payoff matrix, size k*k: payoff[mine * k + theirs] is my
    /// payoff when I play `mine` against `theirs`.  Entries must be finite.
    std::vector<double> payoff;
    UpdateRule rule = UpdateRule::kPavlov;
    /// Pavlov only: keep the strategy iff this encounter's payoff is >= the
    /// aspiration level.
    double aspiration = 0.0;
    /// Optional display names, size k when present ("C", "D", ...).
    std::vector<std::string> strategy_names;
};

/// Compiles `spec` into a protocol over k states; throws
/// std::invalid_argument on malformed specs.
std::unique_ptr<TabulatedProtocol> make_game_protocol(const GameSpec& spec);

/// The classic Prisoner's Dilemma under Pavlov dynamics (R=3, S=0, T=5,
/// P=1, aspiration 2): strategies C=0, D=1; all-C is the unique silent
/// configuration and every population converges to it under any fair
/// pairing.  The library's canonical game fixture.
GameSpec make_pavlov_prisoners_dilemma();

}  // namespace popproto

#endif  // POPPROTO_SCENARIOS_GAMES_H
