// The scenario front door: one named-spec entry point over every
// interaction model, shared by the CLI (`trace_run --model`) and the
// service daemon (SessionSpec::model).
//
// run_scenario builds the requested InteractionModel, wraps it in the
// shared PairStepper (engine tag ObservedEngine::kPairModel), and drives
// the run-loop kernel — so every scenario inherits observers, telemetry,
// silence/stability stopping, checkpoint/resume bit-identity, and
// service-daemon quantum slicing with no scenario-specific plumbing.

#ifndef POPPROTO_SCENARIOS_SCENARIO_SPEC_H
#define POPPROTO_SCENARIOS_SCENARIO_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/configuration.h"
#include "core/simulator.h"
#include "core/tabulated_protocol.h"
#include "graphs/interaction_graph.h"

namespace popproto {

/// Which pairing disciplines run_scenario can build, with their parameters.
/// Defaults are chosen so that only `model` is mandatory.
struct ScenarioSpec {
    /// "round_robin", "sweep", "adversarial", "dynamic_graph", or
    /// "grid_mobility".
    std::string model;

    /// adversarial: per-step look-ahead for null interactions (0 disables
    /// probing).
    std::uint64_t probe = 16;

    /// dynamic_graph: named topologies cycled through, one per phase
    /// ("complete", "ring", "line", "star"); must be non-empty for this
    /// model.
    std::vector<std::string> phases;
    /// dynamic_graph: interactions per phase; 0 resolves to 4n.
    std::uint64_t phase_length = 0;

    /// grid_mobility: torus dimensions; 0 resolves to the smallest square
    /// torus with at least 2n cells.
    std::uint64_t torus_width = 0;
    std::uint64_t torus_height = 0;
    /// grid_mobility: Chebyshev contact range (0 = same cell only).
    std::uint64_t radius = 1;
};

/// The names run_scenario accepts, for CLI/service validation and help text.
const std::vector<std::string>& scenario_model_names();

/// Builds a named topology over `num_agents` agents ("complete", "ring",
/// "line", "star"); throws std::invalid_argument for unknown names.
InteractionGraph make_named_topology(const std::string& name, std::uint32_t num_agents);

/// Runs `protocol` from `initial` under the pairing model described by
/// `spec`.  Stopping rules are as in `simulate`; dynamic-graph runs never
/// test silence (restricted edge sets) and rely on output stability or the
/// budget, like simulate_on_graph.  Requires options.engine == kAuto and a
/// population of at least 2.  The sweep model's private shuffle stream is
/// seeded from options.seed (it never consumes the kernel stream, so the
/// two never interleave).
RunResult run_scenario(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                       const ScenarioSpec& spec, const RunOptions& options);

}  // namespace popproto

#endif  // POPPROTO_SCENARIOS_SCENARIO_SPEC_H
