#include "scenarios/dynamic_graph.h"

#include "core/require.h"

namespace popproto {

DynamicGraphModel::DynamicGraphModel(std::vector<std::vector<Edge>> phases,
                                     std::uint64_t phase_length, std::uint64_t num_agents)
    : phases_(std::move(phases)), phase_length_(phase_length) {
    require(!phases_.empty(), "DynamicGraphModel: need at least one phase");
    require(phase_length_ >= 1, "DynamicGraphModel: phase_length must be at least 1");
    for (const auto& edges : phases_) {
        require(!edges.empty(), "DynamicGraphModel: every phase needs at least one edge");
        for (const auto& [from, to] : edges)
            require(from != to && from < num_agents && to < num_agents,
                    "DynamicGraphModel: edge endpoints must be distinct agents");
    }
}

AgentPair DynamicGraphModel::propose_pair(Rng& rng, const std::vector<State>&) {
    const std::vector<Edge>& edges = phases_[phase_];
    const Edge& edge = edges[rng.below(edges.size())];
    if (++step_in_phase_ == phase_length_) {
        step_in_phase_ = 0;
        phase_ = (phase_ + 1) % phases_.size();
    }
    return {edge.first, edge.second};
}

void DynamicGraphModel::save_state(std::vector<std::uint64_t>& words) const {
    words.assign({phase_, step_in_phase_});
}

void DynamicGraphModel::restore_state(const std::vector<std::uint64_t>& words) {
    require(words.size() == 2,
            "dynamic_graph: checkpoint model state must be {phase, step} words");
    require(words[0] < phases_.size(), "dynamic_graph: checkpoint phase out of range");
    require(words[1] < phase_length_, "dynamic_graph: checkpoint phase step out of range");
    phase_ = words[0];
    step_in_phase_ = words[1];
}

}  // namespace popproto
