#include "scenarios/scenario_spec.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/interaction_model.h"
#include "core/require.h"
#include "core/run_loop.h"
#include "scenarios/adversarial.h"
#include "scenarios/dynamic_graph.h"
#include "scenarios/mobility.h"

namespace popproto {

namespace {

/// Deterministic bounded-cover models (round-robin, sweep) halt on the
/// first silent configuration via the exact W tracker: their convergence
/// guarantees count exact interactions, and the periodic probe could
/// overshoot silence by a full probe period.
template <InteractionModel M, bool kExactSilence = false>
RunResult run_with_model(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                         M model, const RunOptions& options) {
    PairStepper<M, ObservedEngine::kPairModel, kExactSilence> stepper(
        protocol, AgentConfiguration::from_counts(initial).states(), std::move(model),
        "run_scenario");
    return run_loop(stepper, protocol, options, "run_scenario");
}

}  // namespace

const std::vector<std::string>& scenario_model_names() {
    static const std::vector<std::string> names = {
        "round_robin", "sweep", "adversarial", "dynamic_graph", "grid_mobility"};
    return names;
}

InteractionGraph make_named_topology(const std::string& name, std::uint32_t num_agents) {
    if (name == "complete") return InteractionGraph::complete(num_agents);
    if (name == "ring") return InteractionGraph::ring(num_agents);
    if (name == "line") return InteractionGraph::line(num_agents);
    if (name == "star") return InteractionGraph::star(num_agents);
    require(false, "make_named_topology: unknown topology '" + name +
                       "' (expected complete, ring, line, or star)");
    return InteractionGraph::complete(num_agents);  // unreachable
}

RunResult run_scenario(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                       const ScenarioSpec& spec, const RunOptions& options) {
    require(initial.num_states() == protocol.num_states(),
            "run_scenario: configuration does not match protocol");
    const std::uint64_t n = initial.population_size();
    require(n >= 2, "run_scenario: need at least two agents");
    require_engine_field(options, SimulationEngine::kAuto, "run_scenario");

    if (spec.model == "round_robin")
        return run_with_model<RoundRobinPairModel, /*kExactSilence=*/true>(
            protocol, initial, RoundRobinPairModel(n), options);
    if (spec.model == "sweep")
        return run_with_model<SweepPairModel, /*kExactSilence=*/true>(
            protocol, initial, SweepPairModel(n, options.seed), options);
    if (spec.model == "adversarial")
        return run_with_model(protocol, initial,
                              AdversarialCoverModel(protocol, n, spec.probe), options);
    if (spec.model == "dynamic_graph") {
        require(!spec.phases.empty(),
                "run_scenario: dynamic_graph needs at least one phase topology");
        std::vector<std::vector<Edge>> phases;
        phases.reserve(spec.phases.size());
        for (const std::string& topology : spec.phases)
            phases.push_back(
                make_named_topology(topology, static_cast<std::uint32_t>(n)).edges());
        const std::uint64_t phase_length =
            spec.phase_length != 0 ? spec.phase_length : 4 * n;
        return run_with_model(protocol, initial,
                              DynamicGraphModel(std::move(phases), phase_length, n), options);
    }
    if (spec.model == "grid_mobility") {
        std::uint64_t width = spec.torus_width;
        std::uint64_t height = spec.torus_height;
        if (width == 0 || height == 0) {
            // Smallest square torus with at least 2n cells: room to move
            // without making contacts vanishingly rare.
            std::uint64_t side = 2;
            while (side * side < 2 * n) ++side;
            width = height = side;
        }
        return run_with_model(protocol, initial,
                              GridMobilityModel(n, width, height, spec.radius), options);
    }
    throw std::invalid_argument("run_scenario: unknown model '" + spec.model +
                                "' (expected round_robin, sweep, adversarial, dynamic_graph, "
                                "or grid_mobility)");
}

}  // namespace popproto
