#include "scenarios/games.h"

#include <cmath>
#include <utility>

#include "core/require.h"

namespace popproto {

namespace {

/// The strategy `mine` becomes after playing against `theirs`.
State updated_strategy(const GameSpec& spec, State mine, State theirs) {
    const std::size_t k = spec.num_strategies;
    const double my_payoff = spec.payoff[mine * k + theirs];
    switch (spec.rule) {
        case UpdateRule::kPavlov:
            return my_payoff >= spec.aspiration ? mine
                                                : static_cast<State>((mine + 1) % k);
        case UpdateRule::kImitate:
            return spec.payoff[theirs * k + mine] > my_payoff ? theirs : mine;
        case UpdateRule::kBestResponse: {
            State best = 0;
            for (State candidate = 1; candidate < k; ++candidate)
                if (spec.payoff[candidate * k + theirs] > spec.payoff[best * k + theirs])
                    best = candidate;
            return best;
        }
    }
    return mine;
}

}  // namespace

std::unique_ptr<TabulatedProtocol> make_game_protocol(const GameSpec& spec) {
    const std::size_t k = spec.num_strategies;
    require(k >= 2, "make_game_protocol: need at least two strategies");
    require(spec.payoff.size() == k * k,
            "make_game_protocol: payoff matrix must be num_strategies^2 entries");
    for (const double value : spec.payoff)
        require(std::isfinite(value), "make_game_protocol: payoffs must be finite");
    if (spec.rule == UpdateRule::kPavlov)
        require(std::isfinite(spec.aspiration),
                "make_game_protocol: aspiration must be finite");
    require(spec.strategy_names.empty() || spec.strategy_names.size() == k,
            "make_game_protocol: need one name per strategy");

    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = k;
    tables.initial.resize(k);
    tables.output.resize(k);
    for (State s = 0; s < k; ++s) {
        tables.initial[s] = s;  // input x = "start playing strategy x"
        tables.output[s] = s;   // output = the strategy currently played
    }
    if (!spec.strategy_names.empty()) {
        tables.state_names = spec.strategy_names;
        tables.input_names = spec.strategy_names;
        tables.output_names = spec.strategy_names;
    }
    tables.delta.resize(k * k);
    for (State p = 0; p < k; ++p)
        for (State q = 0; q < k; ++q)
            tables.delta[p * k + q] = {updated_strategy(spec, p, q),
                                       updated_strategy(spec, q, p)};
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

GameSpec make_pavlov_prisoners_dilemma() {
    GameSpec spec;
    spec.num_strategies = 2;
    // payoff[mine * 2 + theirs]: R=3 (C,C), S=0 (C,D), T=5 (D,C), P=1 (D,D).
    spec.payoff = {3.0, 0.0, 5.0, 1.0};
    spec.rule = UpdateRule::kPavlov;
    spec.aspiration = 2.0;
    spec.strategy_names = {"C", "D"};
    return spec;
}

}  // namespace popproto
