#include "scenarios/adversarial.h"

#include <algorithm>
#include <array>

#include "core/require.h"

namespace popproto {

AdversarialCoverModel::AdversarialCoverModel(const TabulatedProtocol& protocol,
                                             std::uint64_t num_agents,
                                             std::uint64_t probe_window)
    : protocol_(protocol),
      num_agents_(num_agents),
      num_pairs_(num_agents * (num_agents - 1)),
      probe_window_(probe_window),
      overlay_(std::min(probe_window, num_agents * (num_agents - 1))),
      cursor_(num_agents * (num_agents - 1)) {  // first propose_pair keys an epoch
    require(num_agents >= 2, "AdversarialCoverModel: need at least two agents");
    permutation_ = FeistelPermutation(
        num_pairs_, std::array<std::uint64_t, FeistelPermutation::kRounds>{});
}

std::uint64_t AdversarialCoverModel::entry_at(std::uint64_t pos) const {
    if (!overlay_.empty()) {
        const OverlayEntry& slot = overlay_[pos % overlay_.size()];
        if (slot.pos == pos) return slot.value;
    }
    return permutation_(pos);
}

void AdversarialCoverModel::set_entry(std::uint64_t pos, std::uint64_t value) {
    overlay_[pos % overlay_.size()] = {pos, value};
}

void AdversarialCoverModel::clear_overlay() {
    // Positions repeat across epochs, so stale entries must not survive a
    // rekey.  O(probe_window) once per n(n-1)-step epoch.
    std::fill(overlay_.begin(), overlay_.end(), OverlayEntry{});
}

AgentPair AdversarialCoverModel::propose_pair(Rng& rng, const std::vector<State>& states) {
    if (cursor_ == num_pairs_) {
        // Fresh epoch: a new pseudorandom permutation of all ordered pairs,
        // keyed from the kernel stream (so checkpoints capture it exactly).
        permutation_.rekey(rng);
        clear_overlay();
        cursor_ = 0;
    }
    // Lazy-adaptive probe: prefer a null interaction from the next
    // probe_window entries of the epoch.  Swapping the found entry to the
    // cursor only reorders within the epoch, so the exactly-once-per-epoch
    // cover invariant (and with it fairness) is preserved.
    const std::uint64_t limit = std::min(cursor_ + probe_window_, num_pairs_);
    for (std::uint64_t k = cursor_; k < limit; ++k) {
        const std::uint64_t candidate_index = entry_at(k);
        const AgentPair candidate = decode_ordered_pair(candidate_index, num_agents_);
        const State p = states[candidate.first];
        const State q = states[candidate.second];
        const StatePair next = protocol_.apply_fast(p, q);
        if (next.initiator == p && next.responder == q) {
            if (k != cursor_) {
                const std::uint64_t displaced = entry_at(cursor_);
                set_entry(cursor_, candidate_index);
                set_entry(k, displaced);
            }
            break;
        }
    }
    const AgentPair pair = decode_ordered_pair(entry_at(cursor_), num_agents_);
    ++cursor_;
    return pair;
}

void AdversarialCoverModel::save_state(std::vector<std::uint64_t>& words) const {
    words.clear();
    words.reserve(2 + FeistelPermutation::kRounds + 2 * overlay_.size());
    words.push_back(cursor_);
    const auto& keys = permutation_.keys();
    words.insert(words.end(), keys.begin(), keys.end());
    // Live overlay entries (pos >= cursor; older ones are consumed), sorted
    // by position so the serialization is canonical.
    std::vector<const OverlayEntry*> live;
    for (const OverlayEntry& slot : overlay_)
        if (slot.pos != OverlayEntry::kEmpty && slot.pos >= cursor_) live.push_back(&slot);
    std::sort(live.begin(), live.end(),
              [](const OverlayEntry* a, const OverlayEntry* b) { return a->pos < b->pos; });
    words.push_back(live.size());
    for (const OverlayEntry* slot : live) {
        words.push_back(slot->pos);
        words.push_back(slot->value);
    }
}

void AdversarialCoverModel::restore_state(const std::vector<std::uint64_t>& words) {
    require(words.size() >= 2 + FeistelPermutation::kRounds,
            "adversarial: checkpoint model state has the wrong length");
    require(words[0] <= num_pairs_, "adversarial: checkpoint cursor out of range");
    const std::uint64_t num_live = words[1 + FeistelPermutation::kRounds];
    require(num_live <= overlay_.size(),
            "adversarial: checkpoint overlay larger than the probe window");
    require(words.size() == 2 + FeistelPermutation::kRounds + 2 * num_live,
            "adversarial: checkpoint model state has the wrong length");
    cursor_ = words[0];
    std::array<std::uint64_t, FeistelPermutation::kRounds> keys;
    std::copy(words.begin() + 1, words.begin() + 1 + FeistelPermutation::kRounds, keys.begin());
    permutation_ = FeistelPermutation(num_pairs_, keys);
    clear_overlay();
    for (std::uint64_t i = 0; i < num_live; ++i) {
        const std::uint64_t pos = words[2 + FeistelPermutation::kRounds + 2 * i];
        const std::uint64_t value = words[3 + FeistelPermutation::kRounds + 2 * i];
        require(pos >= cursor_ && pos < num_pairs_ && value < num_pairs_,
                "adversarial: checkpoint overlay entry out of range");
        set_entry(pos, value);
    }
}

}  // namespace popproto
