#include "scenarios/adversarial.h"

#include <algorithm>
#include <numeric>

#include "core/require.h"

namespace popproto {

AdversarialCoverModel::AdversarialCoverModel(const TabulatedProtocol& protocol,
                                             std::uint64_t num_agents,
                                             std::uint64_t probe_window)
    : protocol_(protocol),
      num_agents_(num_agents),
      probe_window_(probe_window),
      permutation_(num_agents * (num_agents - 1)),
      cursor_(permutation_.size()) {  // first propose_pair shuffles an epoch
    require(num_agents >= 2, "AdversarialCoverModel: need at least two agents");
    std::iota(permutation_.begin(), permutation_.end(), std::uint64_t{0});
}

AgentPair AdversarialCoverModel::propose_pair(Rng& rng, const std::vector<State>& states) {
    if (cursor_ == permutation_.size()) {
        // Fresh epoch: a uniformly random permutation of all ordered pairs,
        // drawn from the kernel stream (so checkpoints capture it exactly).
        for (std::size_t i = permutation_.size(); i > 1; --i)
            std::swap(permutation_[i - 1], permutation_[rng.below(i)]);
        cursor_ = 0;
    }
    // Lazy-adaptive probe: prefer a null interaction from the next
    // probe_window entries of the epoch.  Swapping the found entry to the
    // cursor only reorders within the epoch, so the exactly-once-per-epoch
    // cover invariant (and with it fairness) is preserved.
    const std::size_t limit =
        std::min<std::size_t>(cursor_ + probe_window_, permutation_.size());
    for (std::size_t k = cursor_; k < limit; ++k) {
        const AgentPair candidate = decode_ordered_pair(permutation_[k], num_agents_);
        const State p = states[candidate.first];
        const State q = states[candidate.second];
        const StatePair next = protocol_.apply_fast(p, q);
        if (next.initiator == p && next.responder == q) {
            std::swap(permutation_[cursor_], permutation_[k]);
            break;
        }
    }
    const AgentPair pair = decode_ordered_pair(permutation_[cursor_], num_agents_);
    ++cursor_;
    return pair;
}

void AdversarialCoverModel::save_state(std::vector<std::uint64_t>& words) const {
    words.clear();
    words.reserve(1 + permutation_.size());
    words.push_back(cursor_);
    words.insert(words.end(), permutation_.begin(), permutation_.end());
}

void AdversarialCoverModel::restore_state(const std::vector<std::uint64_t>& words) {
    require(words.size() == 1 + permutation_.size(),
            "adversarial: checkpoint model state has the wrong length");
    require(words[0] <= permutation_.size(), "adversarial: checkpoint cursor out of range");
    cursor_ = words[0];
    for (std::size_t i = 0; i < permutation_.size(); ++i) {
        require(words[1 + i] < permutation_.size(),
                "adversarial: checkpoint permutation entry out of range");
        permutation_[i] = words[1 + i];
    }
}

}  // namespace popproto
