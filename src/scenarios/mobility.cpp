#include "scenarios/mobility.h"

#include <algorithm>

#include "core/require.h"

namespace popproto {

GridMobilityModel::GridMobilityModel(std::uint64_t num_agents, std::uint64_t width,
                                     std::uint64_t height, std::uint64_t radius)
    : width_(width), height_(height), radius_(radius), positions_(num_agents) {
    require(num_agents >= 2, "GridMobilityModel: need at least two agents");
    require(width >= 1 && height >= 1 && width * height >= 2,
            "GridMobilityModel: torus needs at least two cells");
    for (std::uint64_t a = 0; a < num_agents; ++a) positions_[a] = a % (width_ * height_);
}

namespace {
constexpr std::uint64_t kNoAgent = ~std::uint64_t{0};
}  // namespace

AgentPair GridMobilityModel::propose_pair(Rng& rng, const std::vector<State>&) {
    // The contact box [x-r, x+r] x [y-r, y+r] wraps; when 2r+1 meets a
    // torus dimension the box covers every row/column once.
    const std::uint64_t span_x = std::min<std::uint64_t>(2 * radius_ + 1, width_);
    const std::uint64_t span_y = std::min<std::uint64_t>(2 * radius_ + 1, height_);
    while (true) {
        // One time tick: every agent takes one four-neighbour torus step,
        // in agent order (a fixed draw order keeps checkpoints exact).
        for (std::uint64_t& cell : positions_) {
            std::uint64_t x = cell % width_, y = cell / width_;
            switch (rng.below(4)) {
                case 0: x = x + 1 == width_ ? 0 : x + 1; break;
                case 1: x = x == 0 ? width_ - 1 : x - 1; break;
                case 2: y = y + 1 == height_ ? 0 : y + 1; break;
                default: y = y == 0 ? height_ - 1 : y - 1; break;
            }
            cell = y * width_ + x;
        }
        // Bucket agents by cell (chains hold descending agent ids), then
        // collect each agent's ordered contacts from its neighbourhood
        // cells: O(n * (2r+1)^2 + occupancy) per tick instead of the
        // all-pairs n^2 scan.
        cell_head_.assign(width_ * height_, kNoAgent);
        next_in_cell_.resize(positions_.size());
        for (std::uint64_t a = 0; a < positions_.size(); ++a) {
            next_in_cell_[a] = cell_head_[positions_[a]];
            cell_head_[positions_[a]] = a;
        }
        contacts_.clear();
        for (std::uint64_t a = 0; a < positions_.size(); ++a) {
            const std::uint64_t xa = positions_[a] % width_, ya = positions_[a] / width_;
            const std::uint64_t x0 =
                span_x == width_ ? 0 : (xa + width_ - radius_) % width_;
            const std::uint64_t y0 =
                span_y == height_ ? 0 : (ya + height_ - radius_) % height_;
            for (std::uint64_t iy = 0; iy < span_y; ++iy) {
                const std::uint64_t y = y0 + iy < height_ ? y0 + iy : y0 + iy - height_;
                for (std::uint64_t ix = 0; ix < span_x; ++ix) {
                    const std::uint64_t x = x0 + ix < width_ ? x0 + ix : x0 + ix - width_;
                    for (std::uint64_t b = cell_head_[y * width_ + x]; b != kNoAgent;
                         b = next_in_cell_[b])
                        if (b != a) contacts_.emplace_back(a, b);
                }
            }
        }
        if (!contacts_.empty()) return contacts_[rng.below(contacts_.size())];
    }
}

void GridMobilityModel::save_state(std::vector<std::uint64_t>& words) const {
    words = positions_;
}

void GridMobilityModel::restore_state(const std::vector<std::uint64_t>& words) {
    require(words.size() == positions_.size(),
            "grid_mobility: checkpoint model state must hold one cell per agent");
    for (const std::uint64_t cell : words)
        require(cell < width_ * height_, "grid_mobility: checkpoint cell out of range");
    positions_ = words;
}

}  // namespace popproto
