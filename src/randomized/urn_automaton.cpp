#include "randomized/urn_automaton.h"

#include <numeric>

#include "core/require.h"

namespace popproto {

void UrnAutomaton::validate() const {
    require(num_states > 0, "UrnAutomaton: no states");
    require(num_token_types > 0, "UrnAutomaton: no token types");
    require(initial_state < num_states, "UrnAutomaton: initial state out of range");
    require(rules.size() == static_cast<std::size_t>(num_states) * num_token_types,
            "UrnAutomaton: rule table must have num_states * num_token_types entries");
    require(halt_exit.size() == num_states, "UrnAutomaton: one halt_exit per state");
    require(empty_exit.size() == num_states, "UrnAutomaton: one empty_exit per state");
    for (const UrnRule& rule : rules) {
        require(rule.next_state < num_states, "UrnAutomaton: next state out of range");
        for (std::uint32_t token : rule.insert)
            require(token < num_token_types, "UrnAutomaton: inserted token out of range");
    }
}

UrnAutomatonRun run_urn_automaton(const UrnAutomaton& automaton,
                                  std::vector<std::uint64_t> initial_tokens,
                                  std::uint64_t max_draws, Rng& rng) {
    automaton.validate();
    require(initial_tokens.size() == automaton.num_token_types,
            "run_urn_automaton: one count per token type required");
    require(max_draws > 0, "run_urn_automaton: zero draw budget");

    UrnAutomatonRun run;
    run.tokens = std::move(initial_tokens);
    std::uint64_t urn_size =
        std::accumulate(run.tokens.begin(), run.tokens.end(), std::uint64_t{0});
    std::uint32_t state = automaton.initial_state;

    for (;;) {
        if (automaton.halt_exit[state]) {
            run.halted = true;
            run.exit_code = *automaton.halt_exit[state];
            return run;
        }
        if (urn_size == 0) {
            run.halted = true;
            run.exit_code = automaton.empty_exit[state];
            return run;
        }
        if (run.draws >= max_draws) return run;  // budget exhausted

        // Draw a token uniformly from the urn.
        ++run.draws;
        std::uint64_t pick = rng.below(urn_size);
        std::uint32_t drawn = 0;
        while (pick >= run.tokens[drawn]) {
            pick -= run.tokens[drawn];
            ++drawn;
        }
        --run.tokens[drawn];
        --urn_size;

        const UrnRule& rule =
            automaton.rules[static_cast<std::size_t>(state) * automaton.num_token_types + drawn];
        for (std::uint32_t token : rule.insert) {
            ++run.tokens[token];
            ++urn_size;
        }
        state = rule.next_state;
    }
}

UrnAutomaton make_parity_urn_automaton() {
    // States 0 (even so far) and 1 (odd so far); one token type, consumed on
    // each draw; the empty-urn exit code is the current state.
    UrnAutomaton automaton;
    automaton.num_states = 2;
    automaton.num_token_types = 1;
    automaton.initial_state = 0;
    automaton.rules = {
        UrnRule{1, {}},  // state 0 draws a token: flip to odd, consume
        UrnRule{0, {}},  // state 1 draws a token: flip to even, consume
    };
    automaton.halt_exit = {std::nullopt, std::nullopt};
    automaton.empty_exit = {0, 1};
    return automaton;
}

UrnAutomaton make_zero_test_urn_automaton(std::uint32_t consecutive_timers) {
    require(consecutive_timers >= 1, "make_zero_test_urn_automaton: k must be positive");
    // States 0..k-1 = current timer streak; state k = "zero" verdict (loss),
    // state k+1 = "nonzero" verdict (win).  Tokens: 0 timer, 1 counter,
    // 2 plain; every drawn token is put back, so the urn never changes.
    UrnAutomaton automaton;
    automaton.num_states = consecutive_timers + 2;
    automaton.num_token_types = 3;
    automaton.initial_state = 0;
    const std::uint32_t zero_state = consecutive_timers;
    const std::uint32_t nonzero_state = consecutive_timers + 1;
    automaton.rules.resize(static_cast<std::size_t>(automaton.num_states) * 3);
    for (std::uint32_t streak = 0; streak < consecutive_timers; ++streak) {
        automaton.rules[streak * 3 + 0] = UrnRule{streak + 1, {0}};  // timer: extend streak
        automaton.rules[streak * 3 + 1] = UrnRule{nonzero_state, {1}};  // counter: win
        automaton.rules[streak * 3 + 2] = UrnRule{0, {2}};              // plain: reset
    }
    automaton.halt_exit.assign(automaton.num_states, std::nullopt);
    automaton.halt_exit[zero_state] = 1;
    automaton.halt_exit[nonzero_state] = 0;
    automaton.empty_exit.assign(automaton.num_states, 1);  // empty urn: trivially zero
    return automaton;
}

}  // namespace popproto
