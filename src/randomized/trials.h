// Repeated-trial measurement harness.
//
// Experiments in this repository keep asking the same question: run a
// protocol T times from the same initial configuration, how long until the
// outputs settle and how often is the consensus correct?  This module
// packages that loop with summary statistics (mean/stddev/min/median/max of
// the convergence time and the correctness count), so benches, examples,
// and downstream studies share one audited implementation.

#ifndef POPPROTO_RANDOMIZED_TRIALS_H
#define POPPROTO_RANDOMIZED_TRIALS_H

#include <cstdint>
#include <optional>
#include <vector>

#include "core/configuration.h"
#include "core/simulator.h"
#include "core/tabulated_protocol.h"

namespace popproto {

/// Summary of one batch of identical-input runs.
struct TrialSummary {
    std::uint64_t trials = 0;
    /// Runs whose final consensus equalled `expected_consensus` (when given;
    /// otherwise runs that reached *any* consensus).
    std::uint64_t correct = 0;
    /// Runs that stopped silent (sound convergence certificates).
    std::uint64_t silent = 0;

    // Statistics of last_output_change across the runs.
    double mean_convergence = 0.0;
    double stddev_convergence = 0.0;
    std::uint64_t min_convergence = 0;
    std::uint64_t median_convergence = 0;
    std::uint64_t max_convergence = 0;

    double correct_rate() const {
        return trials == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(trials);
    }
};

/// Batch options: `base` is used for every run with seeds
/// base.seed, base.seed + 1, ....
struct TrialOptions {
    RunOptions base;
    std::uint64_t trials = 20;
    /// When set, a run counts as correct only with this exact consensus.
    std::optional<Symbol> expected_consensus;
    /// Worker threads to fan the trials across; 0 selects
    /// std::thread::hardware_concurrency().  Trial t always runs with seed
    /// base.seed + t and results are aggregated in trial order, so the
    /// summary is bit-identical at every thread count.
    unsigned threads = 1;
};

/// Runs `options.trials` simulations of `protocol` from `initial`, using
/// the engine selected by `options.base.engine`, across
/// `options.threads` workers.
TrialSummary measure_trials(const TabulatedProtocol& protocol,
                            const CountConfiguration& initial, const TrialOptions& options);

}  // namespace popproto

#endif  // POPPROTO_RANDOMIZED_TRIALS_H
