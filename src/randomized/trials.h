// Repeated-trial measurement harness.
//
// Experiments in this repository keep asking the same question: run a
// protocol T times from the same initial configuration, how long until the
// outputs settle and how often is the consensus correct?  This module
// packages that loop with summary statistics (mean/stddev/min/median/max of
// the convergence time and the correctness count), so benches, examples,
// and downstream studies share one audited implementation.  Callers that
// need distributions rather than summaries (e.g. convergence-time
// histograms) set TrialOptions::keep_records to retain the per-trial facts.

#ifndef POPPROTO_RANDOMIZED_TRIALS_H
#define POPPROTO_RANDOMIZED_TRIALS_H

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/configuration.h"
#include "core/simulator.h"
#include "core/tabulated_protocol.h"

namespace popproto {

/// The per-trial facts retained when TrialOptions::keep_records is set.
/// records[t] is trial t (seed base.seed + t) regardless of thread count.
struct TrialRecord {
    StopReason stop_reason = StopReason::kBudget;
    std::optional<Symbol> consensus;
    /// Empirical convergence time (RunResult::last_output_change).
    std::uint64_t last_output_change = 0;
    std::uint64_t interactions = 0;
    std::uint64_t effective_interactions = 0;
    /// Which engine executed the trial (RunResult::engine) — with
    /// base.engine = kAuto and base.threads = 0 the resolution depends on
    /// population size and hardware, so the record keeps the receipt.
    ObservedEngine engine = ObservedEngine::kAgentArray;
};

/// Summary of one batch of identical-input runs.
struct TrialSummary {
    std::uint64_t trials = 0;
    /// Runs whose final consensus equalled `expected_consensus` (when given;
    /// otherwise runs that reached *any* consensus).
    std::uint64_t correct = 0;

    // Per-stop-reason counts; silent + stable_outputs + budget == trials.
    /// Runs that stopped silent (sound convergence certificates).
    std::uint64_t silent = 0;
    /// Runs stopped by the heuristic output-stability window.
    std::uint64_t stable_outputs = 0;
    /// Runs that exhausted max_interactions without another stopping rule
    /// firing — visible here so budget starvation cannot hide in a summary.
    std::uint64_t budget = 0;

    // Statistics of last_output_change across the runs.  The median is the
    // *lower* median: sorted[(trials - 1) / 2], i.e. the smaller of the two
    // middle values for even trial counts (a value that actually occurred,
    // and never above the distribution midpoint).
    double mean_convergence = 0.0;
    double stddev_convergence = 0.0;
    std::uint64_t min_convergence = 0;
    std::uint64_t median_convergence = 0;
    std::uint64_t max_convergence = 0;

    /// Per-trial records, in trial order; empty unless
    /// TrialOptions::keep_records was set.
    std::vector<TrialRecord> records;

    double correct_rate() const {
        return trials == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(trials);
    }
};

/// Batch options: `base` is used for every run with seeds
/// base.seed, base.seed + 1, ....
struct TrialOptions {
    RunOptions base;
    std::uint64_t trials = 20;
    /// When set, a run counts as correct only with this exact consensus.
    std::optional<Symbol> expected_consensus;
    /// Worker threads to fan the trials across; 0 selects
    /// std::thread::hardware_concurrency().  Trial t always runs with seed
    /// base.seed + t and results are aggregated in trial order, so the
    /// summary is bit-identical at every thread count.  A base.observer, if
    /// any, receives callbacks from every worker concurrently and must be
    /// thread-safe (e.g. MetricsCollector).
    ///
    /// Composition with intra-run parallelism (RunOptions::threads): an
    /// *explicit* base.threads is honoured in every trial exactly as given
    /// — trial results must not depend on the trial fan-out — so the caller
    /// owns the trials x shards product; base.threads == 0 (auto) resolves
    /// to hardware_concurrency / trial-threads (at least 1), which keeps
    /// the product at the hardware concurrency without oversubscription.
    unsigned threads = 1;
    /// Retain TrialSummary::records (one TrialRecord per trial).
    bool keep_records = false;
    /// When set, called once per trial (from the worker about to run it)
    /// to select that trial's observer, overriding base.observer; a
    /// nullptr return leaves the trial unobserved.  The callable itself
    /// must be thread-safe, but because each returned observer is only
    /// ever driven by its own trial, per-trial observers (e.g. one
    /// TraceRecorder per trial, for normalized-trajectory studies against
    /// the mean-field engine) need not be.
    std::function<RunObserver*(std::uint64_t trial)> observer_factory;
};

/// Runs `options.trials` simulations of `protocol` from `initial`, using
/// the engine selected by `options.base.engine`, across
/// `options.threads` workers.
TrialSummary measure_trials(const TabulatedProtocol& protocol,
                            const CountConfiguration& initial, const TrialOptions& options);

}  // namespace popproto

#endif  // POPPROTO_RANDOMIZED_TRIALS_H
