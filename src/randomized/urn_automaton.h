// Urn automata (Sect. 8 and reference [2], "Urn automata", YALEU/DCS/TR-1280).
//
// The paper points to a companion storage model: a finite control attached
// to an *urn*, a multiset of tokens over a finite alphabet accessed only by
// uniform random sampling - the same access discipline as conjugating
// automata.  This module implements that machine as an extension:
//
//   * each step draws one token uniformly at random from the urn;
//   * the rule for (control state, drawn token) selects the next state and
//     a bounded multiset of tokens to insert back (possibly none, possibly
//     different from what was drawn);
//   * the automaton halts when the urn runs empty (exit code = a
//     state-dependent value) or when it enters an explicitly halting state.
//
// The Lemma 11 zero test embeds directly (see make_zero_test_urn_automaton),
// tying the extension back to the paper's quantitative claims.

#ifndef POPPROTO_RANDOMIZED_URN_AUTOMATON_H
#define POPPROTO_RANDOMIZED_URN_AUTOMATON_H

#include <cstdint>
#include <optional>
#include <vector>

#include "core/rng.h"

namespace popproto {

/// One transition of an urn automaton.
struct UrnRule {
    std::uint32_t next_state = 0;
    /// Tokens inserted back into the urn after the draw (the drawn token is
    /// consumed unless re-inserted here).
    std::vector<std::uint32_t> insert;
};

struct UrnAutomaton {
    std::uint32_t num_states = 0;
    std::uint32_t num_token_types = 0;
    std::uint32_t initial_state = 0;

    /// rules[state * num_token_types + token]; ignored for halting states.
    std::vector<UrnRule> rules;

    /// halt_exit[state]: if set, entering `state` halts with that exit code.
    std::vector<std::optional<std::uint32_t>> halt_exit;

    /// empty_exit[state]: exit code reported when the urn runs empty while
    /// the control is in `state`.
    std::vector<std::uint32_t> empty_exit;

    void validate() const;
};

struct UrnAutomatonRun {
    bool halted = false;  ///< false = draw budget exhausted
    std::uint32_t exit_code = 0;
    std::uint64_t draws = 0;
    /// Final urn contents (per token type).
    std::vector<std::uint64_t> tokens;
};

/// Runs `automaton` from `initial_tokens` for at most `max_draws` draws.
UrnAutomatonRun run_urn_automaton(const UrnAutomaton& automaton,
                                  std::vector<std::uint64_t> initial_tokens,
                                  std::uint64_t max_draws, Rng& rng);

/// Parity demo: tokens of one type are consumed one by one; the exit code is
/// the parity (0 = even, 1 = odd) of the initial token count.
UrnAutomaton make_parity_urn_automaton();

/// The Lemma 11 zero test as an urn automaton: token types are
/// {0 = timer, 1 = counter, 2 = plain}; the automaton halts with exit code 1
/// ("zero" verdict, a loss when counters are present) after `k` consecutive
/// timer draws and exit code 0 ("nonzero") on drawing a counter token.
/// Drawn tokens are always re-inserted, so the urn is unchanged.
UrnAutomaton make_zero_test_urn_automaton(std::uint32_t consecutive_timers);

}  // namespace popproto

#endif  // POPPROTO_RANDOMIZED_URN_AUTOMATON_H
