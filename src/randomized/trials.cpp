#include "randomized/trials.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/batch_simulator.h"
#include "core/require.h"

namespace popproto {

namespace {

/// Runs the trials into a per-trial record vector, fanning across
/// `threads` workers pulling trial indices from a shared counter.  Trial t
/// always uses seed base.seed + t and lands in slot t, so the outcome is
/// independent of scheduling.
std::vector<TrialRecord> run_all_trials(const TabulatedProtocol& protocol,
                                        const CountConfiguration& initial,
                                        const TrialOptions& options, unsigned threads,
                                        unsigned intra_run_threads) {
    std::vector<TrialRecord> results(options.trials);
    const auto run_one = [&](std::uint64_t trial) {
        RunOptions run_options = options.base;
        run_options.seed = options.base.seed + trial;
        run_options.threads = intra_run_threads;
        if (options.observer_factory) run_options.observer = options.observer_factory(trial);
        const RunResult result = run_simulation(protocol, initial, run_options);
        results[trial] = {result.stop_reason,  result.consensus,
                          result.last_output_change, result.interactions,
                          result.effective_interactions, result.engine};
    };

    if (threads <= 1) {
        for (std::uint64_t trial = 0; trial < options.trials; ++trial) run_one(trial);
        return results;
    }

    std::atomic<std::uint64_t> next_trial{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
        workers.emplace_back([&] {
            try {
                for (std::uint64_t trial = next_trial.fetch_add(1);
                     trial < options.trials; trial = next_trial.fetch_add(1)) {
                    run_one(trial);
                }
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error) first_error = std::current_exception();
            }
        });
    }
    for (std::thread& worker : workers) worker.join();
    if (first_error) std::rethrow_exception(first_error);
    return results;
}

}  // namespace

TrialSummary measure_trials(const TabulatedProtocol& protocol,
                            const CountConfiguration& initial, const TrialOptions& options) {
    require(options.trials >= 1, "measure_trials: need at least one trial");
    // A RunTelemetryCollector instruments exactly one run at a time; fanned
    // trials would race on it.  Use observer_factory-style per-trial
    // instrumentation or single runs instead.
    require(options.base.telemetry == nullptr,
            "measure_trials: RunOptions::telemetry is per-run; trials reject a shared "
            "collector");
    // A paused trial has no convergence outcome to aggregate; quantum-sliced
    // execution belongs to the service daemon, not the trial harness.
    require(options.base.pause_after == 0 && options.base.stop_flag == nullptr,
            "measure_trials: pause_after/stop_flag would leave trials unfinished");

    unsigned threads = options.threads != 0 ? options.threads
                                            : std::max(1u, std::thread::hardware_concurrency());
    if (threads > options.trials) threads = static_cast<unsigned>(options.trials);

    // Intra-run shards (RunOptions::threads): an explicit value is honoured
    // verbatim — per-trial results must be independent of the trial fan-out
    // — while auto (0) divides the hardware among the trial workers so
    // trials x shards never oversubscribes (see TrialOptions::threads).
    unsigned intra_run_threads = options.base.threads;
    if (intra_run_threads == 0) {
        const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
        intra_run_threads = std::max(1u, hw / threads);
    }

    std::vector<TrialRecord> results =
        run_all_trials(protocol, initial, options, threads, intra_run_threads);

    TrialSummary summary;
    summary.trials = options.trials;
    std::vector<std::uint64_t> convergence;
    convergence.reserve(options.trials);
    for (const TrialRecord& result : results) {
        switch (result.stop_reason) {
            case StopReason::kSilent:
                ++summary.silent;
                break;
            case StopReason::kStableOutputs:
                ++summary.stable_outputs;
                break;
            case StopReason::kBudget:
                ++summary.budget;
                break;
            case StopReason::kPaused:
                // Unreachable: pause options are rejected above.
                break;
        }
        if (result.consensus &&
            (!options.expected_consensus || *result.consensus == *options.expected_consensus)) {
            ++summary.correct;
        }
        convergence.push_back(result.last_output_change);
    }

    std::sort(convergence.begin(), convergence.end());
    summary.min_convergence = convergence.front();
    summary.max_convergence = convergence.back();
    // Lower median (see trials.h): the smaller middle value when the trial
    // count is even, so the statistic never exceeds the distribution
    // midpoint.
    summary.median_convergence = convergence[(convergence.size() - 1) / 2];

    double total = 0.0;
    for (std::uint64_t value : convergence) total += static_cast<double>(value);
    summary.mean_convergence = total / static_cast<double>(convergence.size());

    if (convergence.size() >= 2) {
        double sum_squares = 0.0;
        for (std::uint64_t value : convergence) {
            const double delta = static_cast<double>(value) - summary.mean_convergence;
            sum_squares += delta * delta;
        }
        summary.stddev_convergence =
            std::sqrt(sum_squares / static_cast<double>(convergence.size() - 1));
    }
    if (options.keep_records) summary.records = std::move(results);
    return summary;
}

}  // namespace popproto
