#include "randomized/trials.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"

namespace popproto {

TrialSummary measure_trials(const TabulatedProtocol& protocol,
                            const CountConfiguration& initial, const TrialOptions& options) {
    require(options.trials >= 1, "measure_trials: need at least one trial");

    TrialSummary summary;
    summary.trials = options.trials;
    std::vector<std::uint64_t> convergence;
    convergence.reserve(options.trials);

    for (std::uint64_t trial = 0; trial < options.trials; ++trial) {
        RunOptions run_options = options.base;
        run_options.seed = options.base.seed + trial;
        const RunResult result = simulate(protocol, initial, run_options);

        if (result.stop_reason == StopReason::kSilent) ++summary.silent;
        if (result.consensus &&
            (!options.expected_consensus || *result.consensus == *options.expected_consensus)) {
            ++summary.correct;
        }
        convergence.push_back(result.last_output_change);
    }

    std::sort(convergence.begin(), convergence.end());
    summary.min_convergence = convergence.front();
    summary.max_convergence = convergence.back();
    summary.median_convergence = convergence[convergence.size() / 2];

    double total = 0.0;
    for (std::uint64_t value : convergence) total += static_cast<double>(value);
    summary.mean_convergence = total / static_cast<double>(convergence.size());

    if (convergence.size() >= 2) {
        double sum_squares = 0.0;
        for (std::uint64_t value : convergence) {
            const double delta = static_cast<double>(value) - summary.mean_convergence;
            sum_squares += delta * delta;
        }
        summary.stddev_convergence =
            std::sqrt(sum_squares / static_cast<double>(convergence.size() - 1));
    }
    return summary;
}

}  // namespace popproto
