#include "randomized/population_machine.h"

#include <cmath>

#include "core/require.h"
#include "core/rng.h"

namespace popproto {

namespace {

/// Number of interactions skipped before the next one that satisfies an
/// event of probability `probability`; shared with the batch simulator.
std::uint64_t geometric_skips(Rng& rng, double probability) {
    return rng.geometric_skips(probability);
}

/// Standard normal variate (Box-Muller).
double standard_normal(Rng& rng) {
    double u1 = rng.uniform01();
    if (u1 <= 0.0) u1 = 1e-300;
    const double u2 = rng.uniform01();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

/// Sampled sum of `count` iid variables with the given mean and variance:
/// exact-ish loop avoided via the CLT for large `count`.
std::uint64_t approximate_sum(Rng& rng, std::uint64_t count, double mean, double variance,
                              double min_total) {
    const double total =
        static_cast<double>(count) * mean +
        standard_normal(rng) * std::sqrt(static_cast<double>(count) * variance);
    const double clamped = std::max(min_total, total);
    if (clamped > 1e18) return static_cast<std::uint64_t>(1e18);
    return static_cast<std::uint64_t>(clamped);
}

/// Samples the cost of one zero test on an *empty* counter: the leader must
/// meet the timer `k` times in a row.  Returns (leader encounters,
/// total population interactions including the skipped leaderless ones).
struct EmptyZeroTestCost {
    std::uint64_t leader_encounters;
    std::uint64_t interactions;
};
EmptyZeroTestCost sample_empty_zero_test(Rng& rng, std::uint64_t population,
                                         std::uint32_t timer_parameter) {
    const double n = static_cast<double>(population);
    const double q = 1.0 / (n - 1.0);  // P(partner == timer)
    const double success = std::pow(q, static_cast<double>(timer_parameter));

    // Number of failed streak attempts before the successful one.
    const std::uint64_t failures = geometric_skips(rng, success);

    // A failed attempt draws j timers (j < k) then one non-timer; its length
    // J+1 has the truncated-geometric law P(J=j | fail) = q^j (1-q)/(1-q^k).
    double mean_length = 0.0;
    double mean_square = 0.0;
    {
        double q_pow = 1.0;
        for (std::uint32_t j = 0; j < timer_parameter; ++j) {
            const double p_j = q_pow * (1.0 - q) / (1.0 - success);
            const double length = static_cast<double>(j) + 1.0;
            mean_length += p_j * length;
            mean_square += p_j * length * length;
            q_pow *= q;
        }
    }
    const double variance = std::max(0.0, mean_square - mean_length * mean_length);

    std::uint64_t failure_encounters;
    if (failures <= 65536) {
        failure_encounters = 0;
        for (std::uint64_t attempt = 0; attempt < failures; ++attempt) {
            // Inverse-CDF sample of J (k is small).
            double u = rng.uniform01() * (1.0 - success);
            std::uint32_t j = 0;
            double q_pow = 1.0;
            while (j + 1 < timer_parameter) {
                const double p_j = q_pow * (1.0 - q);
                if (u < p_j) break;
                u -= p_j;
                q_pow *= q;
                ++j;
            }
            failure_encounters += j + 1;
        }
    } else {
        failure_encounters = approximate_sum(rng, failures, mean_length, variance,
                                             static_cast<double>(failures));
    }

    const std::uint64_t encounters = failure_encounters + timer_parameter;

    // Each leader encounter is preceded by Geometric(2/n) leaderless
    // interactions with mean (1-p)/p and variance (1-p)/p^2.
    const double p = 2.0 / n;
    std::uint64_t skipped;
    if (encounters <= 65536) {
        skipped = 0;
        for (std::uint64_t e = 0; e < encounters; ++e) skipped += geometric_skips(rng, p);
    } else {
        skipped = approximate_sum(rng, encounters, (1.0 - p) / p, (1.0 - p) / (p * p), 0.0);
    }
    return EmptyZeroTestCost{encounters, encounters + skipped};
}

}  // namespace

PopulationMachineResult run_population_counter_machine(
    const CounterProgram& program, const std::vector<std::uint64_t>& initial_counters,
    std::uint64_t population, const PopulationMachineOptions& options) {
    program.validate();
    require(initial_counters.size() == program.num_counters,
            "run_population_counter_machine: wrong number of initial counters");
    require(population >= 3,
            "run_population_counter_machine: need leader, timer, and one carrier");
    require(options.max_interactions > 0,
            "run_population_counter_machine: max_interactions must be positive");
    require(options.timer_parameter >= 1,
            "run_population_counter_machine: timer parameter must be positive");
    require(options.share_capacity >= 1,
            "run_population_counter_machine: share capacity must be positive");

    const std::uint64_t n = population;
    Rng rng(options.seed);
    PopulationMachineResult result;

    // Agent 0 is the leader throughout; the timer defaults to agent 1 but is
    // re-drawn by the prologue.
    std::uint64_t timer_agent = 1;

    // ---- Optional Sect. 6.1 prologue: election, timer marking, init phase.
    std::vector<bool> initialized(n, false);
    if (options.leader_election_prologue) {
        // Period of unrest: pairwise elimination from n leaders down to 1.
        std::uint64_t leaders = n;
        while (leaders > 1) {
            const double p = static_cast<double>(leaders) * (leaders - 1) /
                             (static_cast<double>(n) * (n - 1));
            result.interactions += geometric_skips(rng, p) + 1;
            --leaders;
        }
        result.election_interactions = result.interactions;

        // The surviving leader (agent 0 w.l.o.g.) marks the first agent it
        // meets as the timer.
        result.interactions += geometric_skips(rng, 2.0 / static_cast<double>(n)) + 1;
        ++result.leader_encounters;
        timer_agent = 1 + rng.below(n - 1);

        // Initialization phase: visit agents until the timer is seen
        // `timer_parameter` times in a row.
        std::uint32_t streak = 0;
        while (streak < options.timer_parameter) {
            result.interactions += geometric_skips(rng, 2.0 / static_cast<double>(n)) + 1;
            ++result.leader_encounters;
            const std::uint64_t partner = 1 + rng.below(n - 1);
            if (partner == timer_agent) {
                ++streak;
            } else {
                streak = 0;
                initialized[partner] = true;
            }
            if (result.interactions > options.max_interactions) {
                result.stuck = true;
                result.counters = initial_counters;
                return result;
            }
        }
        for (std::uint64_t agent = 1; agent < n; ++agent) {
            if (agent != timer_agent && !initialized[agent])
                result.initialization_incomplete = true;
        }
    }

    // ---- Distribute counter values as bounded shares over the carriers
    // (every agent except leader and timer).
    const std::uint64_t carriers = n - 2;
    std::vector<std::vector<std::uint64_t>> shares(
        program.num_counters, std::vector<std::uint64_t>(n, 0));
    std::vector<std::uint64_t> totals = initial_counters;
    for (std::uint32_t c = 0; c < program.num_counters; ++c) {
        require(initial_counters[c] <= carriers * options.share_capacity,
                "run_population_counter_machine: counter exceeds population capacity");
        std::uint64_t remaining = initial_counters[c];
        for (std::uint64_t agent = 1; agent < n && remaining > 0; ++agent) {
            if (agent == timer_agent) continue;
            const std::uint64_t put = std::min(options.share_capacity, remaining);
            shares[c][agent] = put;
            remaining -= put;
        }
    }

    // ---- Main execution loop.
    const double leader_probability = 2.0 / static_cast<double>(n);
    std::uint32_t pc = 0;
    std::uint32_t streak = 0;
    std::uint64_t consecutive_jumps = 0;

    while (result.interactions <= options.max_interactions) {
        const CounterInstruction& instruction = program.instructions[pc];

        if (instruction.op == CounterInstruction::Op::kHalt) {
            result.halted = true;
            result.exit_code = instruction.target;
            break;
        }
        if (instruction.op == CounterInstruction::Op::kJump) {
            pc = instruction.target;
            streak = 0;
            if (++consecutive_jumps > program.instructions.size()) {
                result.stuck = true;  // a pure jump cycle would spin forever
                break;
            }
            continue;
        }
        consecutive_jumps = 0;

        // Fast path: a zero test on an empty counter can only end in the
        // (correct) "zero" verdict after ~(n-1)^k no-op encounters; sample
        // the whole wait in bulk when it would be expensive to replay.
        if (instruction.op == CounterInstruction::Op::kJumpIfZero && streak == 0 &&
            totals[instruction.counter] == 0) {
            const double expected_wait =
                std::pow(static_cast<double>(n - 1), options.timer_parameter);
            if (expected_wait > static_cast<double>(options.bulk_zero_test_threshold)) {
                const EmptyZeroTestCost cost =
                    sample_empty_zero_test(rng, n, options.timer_parameter);
                result.leader_encounters += cost.leader_encounters;
                result.interactions += cost.interactions;
                ++result.zero_tests;
                pc = instruction.target;
                continue;
            }
        }

        // One leader encounter (skipping the leaderless interactions).
        result.interactions += geometric_skips(rng, leader_probability) + 1;
        ++result.leader_encounters;
        const std::uint64_t partner = 1 + rng.below(n - 1);
        const std::uint32_t c = instruction.counter;

        switch (instruction.op) {
            case CounterInstruction::Op::kInc:
                if (partner != timer_agent && shares[c][partner] < options.share_capacity) {
                    ++shares[c][partner];
                    ++totals[c];
                    ++pc;
                    streak = 0;
                }
                break;
            case CounterInstruction::Op::kDec:
                if (partner != timer_agent && shares[c][partner] > 0) {
                    --shares[c][partner];
                    --totals[c];
                    ++pc;
                    streak = 0;
                }
                break;
            case CounterInstruction::Op::kJumpIfZero:
                if (partner == timer_agent) {
                    if (++streak == options.timer_parameter) {
                        // Verdict: zero.
                        ++result.zero_tests;
                        if (totals[c] != 0) ++result.zero_test_errors;
                        pc = instruction.target;
                        streak = 0;
                    }
                } else if (shares[c][partner] > 0) {
                    // Verdict: nonzero.
                    ++result.zero_tests;
                    ++pc;
                    streak = 0;
                } else {
                    streak = 0;  // plain agent: the timer run is broken
                }
                break;
            case CounterInstruction::Op::kJump:
            case CounterInstruction::Op::kHalt:
                ensure(false, "unreachable");
        }
    }

    if (!result.halted && !result.stuck) result.stuck = true;
    result.counters = totals;
    return result;
}

}  // namespace popproto
