// The urn process of Lemma 11 (the zero-test abstraction).
//
// An urn holds N tokens: one timer token, m counter tokens, and N - 1 - m
// plain tokens.  Tokens are drawn uniformly with replacement; the process
// *wins* on drawing a counter token and *loses* on drawing the timer token k
// times in a row first.  Lemma 11 gives the exact loss probability
// (N-1) / (m N^k + N - 1 - m), an N/m bound on the expected draws of a
// winning process, and an O(N^k) bound when m = 0.  This module provides the
// closed forms, an independent dynamic-programming solution, and a sampler.

#ifndef POPPROTO_RANDOMIZED_URN_H
#define POPPROTO_RANDOMIZED_URN_H

#include <cstdint>

#include "core/rng.h"

namespace popproto {

/// Exact loss probability (N-1) / (m N^k + N-1-m) from Lemma 11(1).
/// For m = 0 the process can only lose, so the probability is 1.
/// Requires N >= 2, m <= N - 1, k >= 1.
double urn_loss_probability(std::uint64_t num_tokens, std::uint64_t counter_tokens,
                            std::uint32_t consecutive_timers);

/// The same probability computed by solving the streak-length Markov chain
/// directly (used to cross-check the closed form in tests).
double urn_loss_probability_dp(std::uint64_t num_tokens, std::uint64_t counter_tokens,
                               std::uint32_t consecutive_timers);

/// Lemma 11(2): upper bound N/m on the expected draws of a process
/// conditioned on winning.  Requires m >= 1.
double urn_expected_draws_win_bound(std::uint64_t num_tokens, std::uint64_t counter_tokens);

/// Lemma 11(3): upper bound N^k * N/(N-1) on the expected draws when m = 0
/// (the process runs until it loses).
double urn_expected_draws_empty_bound(std::uint64_t num_tokens,
                                      std::uint32_t consecutive_timers);

/// One sampled run of the process.
struct UrnOutcome {
    bool lost = false;
    std::uint64_t draws = 0;
};
UrnOutcome sample_urn(std::uint64_t num_tokens, std::uint64_t counter_tokens,
                      std::uint32_t consecutive_timers, Rng& rng);

}  // namespace popproto

#endif  // POPPROTO_RANDOMIZED_URN_H
