#include "randomized/urn.h"

#include <cmath>
#include <vector>

#include "core/require.h"

namespace popproto {

namespace {

void check_parameters(std::uint64_t num_tokens, std::uint64_t counter_tokens,
                      std::uint32_t consecutive_timers) {
    require(num_tokens >= 2, "urn: need at least two tokens");
    require(counter_tokens + 1 <= num_tokens, "urn: too many counter tokens");
    require(consecutive_timers >= 1, "urn: k must be at least 1");
}

}  // namespace

double urn_loss_probability(std::uint64_t num_tokens, std::uint64_t counter_tokens,
                            std::uint32_t consecutive_timers) {
    check_parameters(num_tokens, counter_tokens, consecutive_timers);
    if (counter_tokens == 0) return 1.0;
    const double n = static_cast<double>(num_tokens);
    const double m = static_cast<double>(counter_tokens);
    const double n_to_k = std::pow(n, static_cast<double>(consecutive_timers));
    return (n - 1.0) / (m * n_to_k + (n - 1.0 - m));
}

double urn_loss_probability_dp(std::uint64_t num_tokens, std::uint64_t counter_tokens,
                               std::uint32_t consecutive_timers) {
    check_parameters(num_tokens, counter_tokens, consecutive_timers);
    if (counter_tokens == 0) return 1.0;
    const double n = static_cast<double>(num_tokens);
    const double p_timer = 1.0 / n;
    const double p_plain = (n - 1.0 - static_cast<double>(counter_tokens)) / n;

    // p_t = loss probability given a current streak of t timer draws:
    //   p_k = 1;  p_t = p_timer * p_{t+1} + p_plain * p_0   (counter -> win).
    // Write p_t = a_t + b_t * p_0 and back-substitute.
    double a = 1.0;
    double b = 0.0;
    for (std::uint32_t t = consecutive_timers; t-- > 0;) {
        a = p_timer * a;
        b = p_timer * b + p_plain;
    }
    return a / (1.0 - b);
}

double urn_expected_draws_win_bound(std::uint64_t num_tokens, std::uint64_t counter_tokens) {
    check_parameters(num_tokens, counter_tokens, 1);
    require(counter_tokens >= 1, "urn_expected_draws_win_bound: need counter tokens");
    return static_cast<double>(num_tokens) / static_cast<double>(counter_tokens);
}

double urn_expected_draws_empty_bound(std::uint64_t num_tokens,
                                      std::uint32_t consecutive_timers) {
    check_parameters(num_tokens, 0, consecutive_timers);
    const double n = static_cast<double>(num_tokens);
    return std::pow(n, static_cast<double>(consecutive_timers)) * n / (n - 1.0);
}

UrnOutcome sample_urn(std::uint64_t num_tokens, std::uint64_t counter_tokens,
                      std::uint32_t consecutive_timers, Rng& rng) {
    check_parameters(num_tokens, counter_tokens, consecutive_timers);
    UrnOutcome outcome;
    std::uint32_t streak = 0;
    for (;;) {
        ++outcome.draws;
        const std::uint64_t token = rng.below(num_tokens);
        if (token == 0) {  // the timer token
            if (++streak == consecutive_timers) {
                outcome.lost = true;
                return outcome;
            }
        } else if (token <= counter_tokens) {  // a counter token
            outcome.lost = false;
            return outcome;
        } else {  // a plain token: streak broken
            streak = 0;
        }
    }
}

}  // namespace popproto
