// The leader-driven population counter machine (Theorems 9 and 10).
//
// A designated leader agent stores the finite control of a counter program;
// every other agent except a designated timer stores one bounded share of
// each counter, so counter c's value is the population-wide sum of shares
// (the integer representation of Sect. 3.4).  The leader executes:
//
//   inc c  - wait for an encounter with an agent whose share of c is below
//            capacity, then increment that share;
//   dec c  - wait for an agent with a positive share and decrement it;
//   jz  c  - the randomized zero test of Theorem 9: declare "zero" after k
//            consecutive encounters with the timer, declare "nonzero" on
//            encountering a positive share; an encounter with a zero-share
//            agent restarts the timer streak (the urn process of Lemma 11).
//
// The zero test can err (declare zero while the counter is positive); the
// runtime records every such event so experiments can compare the empirical
// error rate with the Theta(n^-k / m) prediction.
//
// Interactions not involving the leader change nothing, so the runtime
// advances the global interaction clock with exact geometric skips instead
// of simulating them one by one; the reported interaction counts are
// distributed exactly as in the naive simulation.
//
// The optional leader-election prologue reproduces Sect. 6.1: the Theta(n^2)
// "period of unrest" is simulated exactly (pairwise elimination under
// uniform pairing), after which the unique winner marks a timer and runs the
// initialization phase, ending it after k consecutive timer encounters; the
// run records whether initialization in fact reached every agent.  (Lost
// rivals' partial restarts and timer retrieval, which only affect constants,
// are not simulated; see DESIGN.md.)

#ifndef POPPROTO_RANDOMIZED_POPULATION_MACHINE_H
#define POPPROTO_RANDOMIZED_POPULATION_MACHINE_H

#include <cstdint>
#include <vector>

#include "machines/counter_machine.h"

namespace popproto {

struct PopulationMachineOptions {
    /// The zero-test waiting parameter k of Theorem 9.
    std::uint32_t timer_parameter = 3;

    /// Maximum share of one counter a single agent may hold (M in Sect. 6.1).
    std::uint64_t share_capacity = 1;

    /// Hard interaction budget; exceeding it marks the run stuck.
    std::uint64_t max_interactions = 0;

    std::uint64_t seed = 1;

    /// If true, run the Sect. 6.1 leader-election + initialization prologue
    /// before the program starts.
    bool leader_election_prologue = false;

    /// A zero test on a *genuinely empty* counter must wait ~(n-1)^k leader
    /// encounters for k consecutive timer meetings, all of them no-ops.
    /// When the expected wait exceeds this threshold the runtime samples the
    /// whole wait in bulk (exact geometric count of timer-streak attempts;
    /// normal approximation for the attempt lengths and interleaved
    /// leaderless interactions once the counts are large enough for the CLT).
    /// The verdict is unaffected - the counter is empty, so "zero" is
    /// correct - only the reported interaction counts carry the (tiny)
    /// approximation.  Set to ~0 (the default below is 2^20) to force the
    /// exact path in tests.
    std::uint64_t bulk_zero_test_threshold = 1u << 20;
};

struct PopulationMachineResult {
    bool halted = false;
    bool stuck = false;  ///< interaction budget exhausted before halting
    std::uint32_t exit_code = 0;

    /// Final true counter values (sums of shares).
    std::vector<std::uint64_t> counters;

    /// Total population interactions, including the skipped leaderless ones.
    std::uint64_t interactions = 0;

    /// Encounters in which the leader took part.
    std::uint64_t leader_encounters = 0;

    /// Zero-test accounting.
    std::uint64_t zero_tests = 0;
    std::uint64_t zero_test_errors = 0;  ///< "zero" verdicts on positive counters

    /// Prologue accounting (leader_election_prologue only).
    std::uint64_t election_interactions = 0;
    bool initialization_incomplete = false;  ///< init phase missed some agent
};

/// Runs `program` on a population of `population` agents (>= 3: leader,
/// timer, and at least one share-carrying agent).  `initial_counters` are
/// distributed over the share-carrying agents; throws std::invalid_argument
/// if capacity (population - 2) * share_capacity is insufficient for any
/// counter, or if it could not possibly hold intermediate values the caller
/// is responsible for bounding.
PopulationMachineResult run_population_counter_machine(
    const CounterProgram& program, const std::vector<std::uint64_t>& initial_counters,
    std::uint64_t population, const PopulationMachineOptions& options);

}  // namespace popproto

#endif  // POPPROTO_RANDOMIZED_POPULATION_MACHINE_H
