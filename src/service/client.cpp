#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace popproto::service {

ServiceClient ServiceClient::connect_unix(const std::string& path) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error(std::string("client: socket: ") + std::strerror(errno));
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (path.size() >= sizeof(address.sun_path)) {
        ::close(fd);
        throw std::runtime_error("client: unix socket path too long: " + path);
    }
    std::strncpy(address.sun_path, path.c_str(), sizeof(address.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
        const std::string message =
            "client: connect " + path + ": " + std::strerror(errno);
        ::close(fd);
        throw std::runtime_error(message);
    }
    return ServiceClient(fd);
}

ServiceClient ServiceClient::connect_tcp(const std::string& host, int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error(std::string("client: socket: ") + std::strerror(errno));
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
        ::close(fd);
        throw std::runtime_error("client: bad IPv4 address: " + host);
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
        const std::string message = "client: connect " + host + ":" + std::to_string(port) +
                                    ": " + std::strerror(errno);
        ::close(fd);
        throw std::runtime_error(message);
    }
    return ServiceClient(fd);
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
        buffer_ = std::move(other.buffer_);
    }
    return *this;
}

ServiceClient::~ServiceClient() {
    if (fd_ >= 0) ::close(fd_);
}

void ServiceClient::send_line(const std::string& line) {
    std::string frame = line;
    frame += '\n';
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n =
            ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            throw std::runtime_error(std::string("client: send: ") + std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
}

std::string ServiceClient::read_line() {
    for (;;) {
        const std::size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            std::string line = buffer_.substr(0, newline);
            buffer_.erase(0, newline + 1);
            if (!line.empty() && line.back() == '\r') line.pop_back();
            return line;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) throw std::runtime_error("client: connection closed by daemon");
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

std::string ServiceClient::request(const std::string& line) {
    send_line(line);
    return read_line();
}

}  // namespace popproto::service
