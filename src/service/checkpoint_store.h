// On-disk spill store for evicted sessions and graceful drains.
//
// Each session owns at most two files under the store directory:
//
//   <id>.ckpt     the RunCheckpoint in the core text format, written via
//                 write_checkpoint_atomic (tmp + rename, never a torn file)
//   <id>.session  a one-line JSON manifest: the SessionSpec plus lifecycle
//                 metadata (state, counters, terminal result), also written
//                 atomically
//
// The LRU evictor writes both when spilling an idle session; the graceful
// drain (SIGTERM) writes both for every in-flight session plus a
// manifest-only record for terminal ones, so a restarted daemon loses no
// session: RunRegistry::restore scans the directory, re-creates every
// session, and faults checkpoints back in on the session's first quantum.

#ifndef POPPROTO_SERVICE_CHECKPOINT_STORE_H
#define POPPROTO_SERVICE_CHECKPOINT_STORE_H

#include <string>
#include <utility>
#include <vector>

#include "core/run_loop.h"

namespace popproto::service {

class CheckpointStore {
public:
    /// Uses (and creates, mkdir -p style) `directory`; throws
    /// std::runtime_error when it cannot be created.
    explicit CheckpointStore(std::string directory);

    const std::string& directory() const { return directory_; }

    std::string checkpoint_path(const std::string& id) const;
    std::string manifest_path(const std::string& id) const;

    /// Atomic writes (tmp + rename; see write_checkpoint_atomic).
    void save_checkpoint(const std::string& id, const RunCheckpoint& checkpoint) const;
    void save_manifest(const std::string& id, const std::string& json_line) const;

    bool has_checkpoint(const std::string& id) const;

    /// Loads a spilled checkpoint / manifest; throws std::runtime_error
    /// naming the path when missing or unreadable.
    RunCheckpoint load_checkpoint(const std::string& id) const;
    std::string load_manifest(const std::string& id) const;

    /// Every (id, manifest line) present in the directory, sorted by id for
    /// deterministic restore order.
    std::vector<std::pair<std::string, std::string>> list_manifests() const;

    /// Deletes the session's files (missing files are not an error).
    void remove(const std::string& id) const;

private:
    std::string directory_;
};

}  // namespace popproto::service

#endif  // POPPROTO_SERVICE_CHECKPOINT_STORE_H
