// Minimal JSON values for the service wire protocol.
//
// The daemon speaks newline-delimited JSON (service/wire.h); nothing else
// in the repo needs general JSON *parsing* (exporters emit JSON by hand),
// so this is a deliberately small recursive-descent implementation: the
// full value grammar (null / bool / number / string / array / object), one
// value per parse, errors as std::invalid_argument with a byte offset.
//
// Numbers keep integer precision: an unsigned integer literal is stored as
// uint64 (seeds and interaction counts exceed the 2^53 double-exact range),
// a negative integer as int64, and anything with a fraction or exponent as
// double.  `as_u64` accepts only the first; cross-kind access throws with
// the caller-supplied field name, so wire-level type errors read as
// "submit: 'seed' must be an unsigned integer" rather than a bad_variant.

#ifndef POPPROTO_SERVICE_JSON_H
#define POPPROTO_SERVICE_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace popproto::service {

class JsonValue {
public:
    enum class Kind { kNull, kBool, kUInt, kInt, kDouble, kString, kArray, kObject };

    /// Object members keep insertion order (the wire docs show canonical
    /// field order, and deterministic serialization makes tests exact).
    using Object = std::vector<std::pair<std::string, JsonValue>>;
    using Array = std::vector<JsonValue>;

    JsonValue() : kind_(Kind::kNull) {}
    explicit JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
    explicit JsonValue(std::uint64_t value) : kind_(Kind::kUInt), uint_(value) {}
    explicit JsonValue(std::int64_t value) : kind_(Kind::kInt), int_(value) {}
    explicit JsonValue(double value) : kind_(Kind::kDouble), double_(value) {}
    explicit JsonValue(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}
    explicit JsonValue(Array value) : kind_(Kind::kArray), array_(std::move(value)) {}
    explicit JsonValue(Object value) : kind_(Kind::kObject), object_(std::move(value)) {}

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::kNull; }
    bool is_object() const { return kind_ == Kind::kObject; }
    bool is_array() const { return kind_ == Kind::kArray; }
    bool is_string() const { return kind_ == Kind::kString; }

    /// Typed accessors; throw std::invalid_argument naming `what` when the
    /// value has a different kind (or, for as_u64, a negative/fractional
    /// number).
    bool as_bool(const std::string& what) const;
    std::uint64_t as_u64(const std::string& what) const;
    double as_double(const std::string& what) const;
    const std::string& as_string(const std::string& what) const;
    const Array& as_array(const std::string& what) const;
    const Object& as_object(const std::string& what) const;

    /// Object member lookup; nullptr when absent or not an object.
    const JsonValue* find(const std::string& key) const;

    /// Compact serialization (no whitespace), suitable for one-line wire
    /// frames.  Strings are escaped per jsonl_writer conventions.
    std::string to_string() const;
    void append_to(std::string& out) const;

private:
    Kind kind_;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

/// Parses exactly one JSON value from `text` (trailing whitespace allowed,
/// trailing tokens are an error).  Throws std::invalid_argument with the
/// byte offset of the problem: "json: offset 17: expected ':'".
JsonValue parse_json(const std::string& text);

/// Escapes `text` as a JSON string literal (including the quotes).
std::string json_quote(const std::string& text);

}  // namespace popproto::service

#endif  // POPPROTO_SERVICE_JSON_H
