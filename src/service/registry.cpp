#include "service/registry.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/batch_simulator.h"
#include "core/require.h"
#include "observe/jsonl_writer.h"
#include "scenarios/scenario_spec.h"
#include "service/json.h"
#include "telemetry/telemetry.h"

namespace popproto::service {

namespace {

StopReason parse_stop_reason_name(const std::string& name) {
    if (name == "silent") return StopReason::kSilent;
    if (name == "stable_outputs") return StopReason::kStableOutputs;
    if (name == "budget") return StopReason::kBudget;
    if (name == "paused") return StopReason::kPaused;
    throw std::invalid_argument("unknown stop reason \"" + name + "\"");
}

const char* stop_reason_manifest_name(StopReason reason) {
    switch (reason) {
        case StopReason::kSilent:
            return "silent";
        case StopReason::kStableOutputs:
            return "stable_outputs";
        case StopReason::kBudget:
            return "budget";
        case StopReason::kPaused:
            return "paused";
    }
    return "unknown";
}

SessionState parse_session_state_name(const std::string& name) {
    if (name == "queued") return SessionState::kQueued;
    if (name == "suspended") return SessionState::kSuspended;
    if (name == "evicted") return SessionState::kEvicted;
    if (name == "done") return SessionState::kDone;
    if (name == "failed") return SessionState::kFailed;
    if (name == "cancelled") return SessionState::kCancelled;
    // "running" never appears in a manifest (drain interrupts every
    // quantum before writing them); treat it defensively as queued.
    if (name == "running") return SessionState::kQueued;
    throw std::invalid_argument("unknown session state \"" + name + "\"");
}

}  // namespace

/// Stores the (single, at the pause boundary) checkpoint a quantum emits.
class RunRegistry::CaptureSink final : public CheckpointSink {
public:
    explicit CaptureSink(std::optional<RunCheckpoint>& target) : target_(target) {}
    void on_checkpoint(const RunCheckpoint& checkpoint) override { target_ = checkpoint; }

private:
    std::optional<RunCheckpoint>& target_;
};

/// Streams one session's trace to its wire subscribers, reusing the
/// JsonlTraceWriter serialization with two quantum-boundary filters: the
/// "start" event fires only for the session's first quantum, and the
/// "stop" event only when the run is terminal (kPaused quantum boundaries
/// are service bookkeeping, not trajectory events).  Each line gets the
/// session id spliced in: {"session":"s-1","event":...}.
class RunRegistry::SessionTrace final : public RunObserver {
public:
    SessionTrace(RunRegistry& registry, Session& session, bool first_segment)
        : registry_(registry),
          session_(session),
          first_segment_(first_segment),
          writer_([this](const std::string& line) { forward(line); }) {}

    void on_start(const RunStartInfo& info) override {
        if (first_segment_ && listening()) writer_.on_start(info);
    }
    void on_snapshot(std::uint64_t interaction_index,
                     const CountConfiguration& configuration) override {
        if (listening()) writer_.on_snapshot(interaction_index, configuration);
    }
    void on_output_change(std::uint64_t interaction_index) override {
        if (listening()) writer_.on_output_change(interaction_index);
    }
    void on_engine_switch(const EngineSwitchInfo& info) override {
        if (listening()) writer_.on_engine_switch(info);
    }
    void on_stop(const RunResult& result, double wall_seconds) override {
        if (result.stop_reason != StopReason::kPaused && listening())
            writer_.on_stop(result, wall_seconds);
    }

private:
    bool listening() const {
        return session_.subscriber_count.load(std::memory_order_relaxed) > 0;
    }

    void forward(const std::string& line) {
        // All writer lines are objects starting with {"event": — splice the
        // session id in front so multiplexed subscriber streams stay
        // attributable.
        std::string tagged = "{\"session\":" + json_quote(session_.id) + ",";
        tagged.append(line, 1, line.size() - 1);
        registry_.publish(session_, tagged);
    }

    RunRegistry& registry_;
    Session& session_;
    const bool first_segment_;
    JsonlTraceWriter writer_;
};

RunRegistry::RunRegistry(RegistryOptions options)
    : options_(std::move(options)), store_(options_.spill_dir) {
    unsigned workers = options_.workers;
    if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
    require(options_.default_quantum >= 1, "RunRegistry: default_quantum must be at least 1");
    workers_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        workers_.emplace_back([this] { worker_loop(); });
}

RunRegistry::~RunRegistry() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        for (auto& [id, session] : sessions_) session->stop_requested.store(true);
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) {
        if (worker.joinable()) worker.join();
    }
}

std::string RunRegistry::submit(const SessionSpec& spec) {
    // Validate eagerly: instantiate the protocol and initial configuration
    // now so a bad submit fails at the wire, not inside a worker.
    std::unique_ptr<TabulatedProtocol> protocol = build_protocol(spec);
    const CountConfiguration initial = build_initial(*protocol, spec);
    require(initial.population_size() >= 2, "submit: population must be at least 2");
    parse_engine_name(spec.engine);
    require(spec.threads <= 1 || spec.engine == "auto" || spec.engine == "collapsed",
            "submit: threads > 1 requires the collapsed engine");
    if (spec.model != "uniform") {
        const std::vector<std::string>& names = scenario_model_names();
        require(std::find(names.begin(), names.end(), spec.model) != names.end(),
                "submit: unknown model \"" + spec.model + "\"");
        require(spec.engine == "auto" && spec.threads <= 1,
                "submit: non-uniform models require engine \"auto\" and threads <= 1");
        if (spec.model == "dynamic_graph")
            require(!spec.phases.empty(), "submit: dynamic_graph requires phases");
    }

    std::unique_lock<std::mutex> lock(mutex_);
    require(!draining_ && !stopping_, "submit: registry is draining");
    if (options_.max_queued != 0) {
        const std::size_t backlog = backlog_locked();
        if (backlog >= options_.max_queued)
            throw QueueFullError(backlog, options_.max_queued);
    }
    auto session = std::make_shared<Session>();
    session->id = "s-" + std::to_string(next_session_number_++);
    session->spec = spec;
    session->quantum = spec.quantum != 0 ? spec.quantum : options_.default_quantum;
    session->protocol = std::move(protocol);
    sessions_.emplace(session->id, session);
    scheduler_.add(session->id, spec.weight);
    ++submitted_;
    const std::string id = session->id;
    lock.unlock();
    work_cv_.notify_one();
    return id;
}

/// Sessions contending for workers right now (the admission-bound metric
/// and the stats "queue_depth" value).  Caller holds mutex_.
std::size_t RunRegistry::backlog_locked() const {
    std::size_t backlog = 0;
    for (const auto& [id, session] : sessions_) {
        if (session->state == SessionState::kQueued ||
            session->state == SessionState::kRunning)
            ++backlog;
    }
    return backlog;
}

std::shared_ptr<RunRegistry::Session> RunRegistry::find_session(const std::string& id) const {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) throw std::invalid_argument("unknown session \"" + id + "\"");
    return it->second;
}

SessionStatus RunRegistry::status(const std::string& id) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::shared_ptr<Session> session = find_session(id);
    SessionStatus status;
    status.id = session->id;
    status.name = session->spec.name;
    status.state = session->state;
    status.interactions = session->interactions;
    status.effective_interactions = session->effective_interactions;
    status.quanta = session->quanta;
    status.stop_reason = session->stop_reason;
    status.consensus = session->consensus;
    status.last_output_change = session->last_output_change;
    status.error = session->error;
    return status;
}

std::vector<SessionStatus> RunRegistry::list() const {
    std::vector<std::string> ids;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ids.reserve(sessions_.size());
        for (const auto& [id, session] : sessions_) ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end(), [](const std::string& a, const std::string& b) {
        // Numeric sort on the "s-N" suffix so s-10 follows s-9.
        return a.size() != b.size() ? a.size() < b.size() : a < b;
    });
    std::vector<SessionStatus> statuses;
    statuses.reserve(ids.size());
    for (const std::string& id : ids) statuses.push_back(status(id));
    return statuses;
}

void RunRegistry::suspend(const std::string& id) {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::shared_ptr<Session> session = find_session(id);
    switch (session->state) {
        case SessionState::kRunning:
            session->pending = Session::PendingOp::kSuspend;
            session->stop_requested.store(true);
            return;
        case SessionState::kQueued:
            scheduler_.remove(id);
            session->state = SessionState::kSuspended;
            evict_lru_locked();
            return;
        case SessionState::kSuspended:
        case SessionState::kEvicted:
            return;  // idempotent
        case SessionState::kDone:
        case SessionState::kFailed:
        case SessionState::kCancelled:
            throw std::invalid_argument("suspend: session " + id + " is terminal");
    }
}

void RunRegistry::resume(const std::string& id) {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::shared_ptr<Session> session = find_session(id);
    switch (session->state) {
        case SessionState::kSuspended:
        case SessionState::kEvicted:
            // An evicted session's checkpoint stays on disk and is faulted
            // back in by the worker on its next quantum.
            session->state = SessionState::kQueued;
            scheduler_.add(id, session->spec.weight);
            lock.unlock();
            work_cv_.notify_one();
            return;
        case SessionState::kQueued:
        case SessionState::kRunning:
            // A pending suspend that has not landed yet is withdrawn.
            if (session->pending == Session::PendingOp::kSuspend) {
                session->pending = Session::PendingOp::kNone;
                session->stop_requested.store(false);
            }
            return;
        case SessionState::kDone:
        case SessionState::kFailed:
        case SessionState::kCancelled:
            throw std::invalid_argument("resume: session " + id + " is terminal");
    }
}

void RunRegistry::cancel(const std::string& id) {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::shared_ptr<Session> session = find_session(id);
    switch (session->state) {
        case SessionState::kRunning:
            session->pending = Session::PendingOp::kCancel;
            session->stop_requested.store(true);
            return;
        case SessionState::kQueued:
            scheduler_.remove(id);
            [[fallthrough]];
        case SessionState::kSuspended:
        case SessionState::kEvicted: {
            session->state = SessionState::kCancelled;
            session->checkpoint.reset();
            session->protocol.reset();
            if (session->checkpoint_on_disk) {
                store_.remove(id);
                session->checkpoint_on_disk = false;
            }
            lock.unlock();
            publish(*session, "{\"session\":" + json_quote(id) +
                                  ",\"event\":\"state\",\"state\":\"cancelled\"}");
            idle_cv_.notify_all();
            return;
        }
        case SessionState::kCancelled:
            return;  // idempotent
        case SessionState::kDone:
        case SessionState::kFailed:
            throw std::invalid_argument("cancel: session " + id + " is terminal");
    }
}

void RunRegistry::subscribe(const std::string& id, std::uint64_t token, LineSink sink) {
    require(static_cast<bool>(sink), "subscribe: sink must be callable");
    std::unique_lock<std::mutex> lock(mutex_);
    const std::shared_ptr<Session> session = find_session(id);
    const SessionState state = session->state;
    {
        const std::lock_guard<std::mutex> subscriber_lock(subscriber_mutex_);
        session->subscribers.emplace_back(token, sink);
        session->subscriber_count.store(session->subscribers.size(),
                                        std::memory_order_relaxed);
    }
    lock.unlock();
    // A subscriber to an already-settled session would otherwise wait
    // forever for events that fired in the past.
    if (state == SessionState::kDone || state == SessionState::kFailed ||
        state == SessionState::kCancelled) {
        sink("{\"session\":" + json_quote(id) + ",\"event\":\"state\",\"state\":\"" +
             session_state_name(state) + "\"}");
    }
}

void RunRegistry::unsubscribe(const std::string& id, std::uint64_t token) {
    std::shared_ptr<Session> session;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = sessions_.find(id);
        if (it == sessions_.end()) return;
        session = it->second;
    }
    const std::lock_guard<std::mutex> subscriber_lock(subscriber_mutex_);
    auto& subscribers = session->subscribers;
    subscribers.erase(std::remove_if(subscribers.begin(), subscribers.end(),
                                     [&](const auto& entry) { return entry.first == token; }),
                      subscribers.end());
    session->subscriber_count.store(subscribers.size(), std::memory_order_relaxed);
}

void RunRegistry::publish(Session& session, const std::string& line) {
    std::vector<LineSink> sinks;
    {
        const std::lock_guard<std::mutex> lock(subscriber_mutex_);
        sinks.reserve(session.subscribers.size());
        for (const auto& [token, sink] : session.subscribers) sinks.push_back(sink);
    }
    for (const LineSink& sink : sinks) sink(line);
}

void RunRegistry::worker_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_cv_.wait(lock, [&] { return stopping_ || draining_ || !scheduler_.empty(); });
        if (stopping_ || draining_) return;
        std::optional<DrrScheduler::Entry> entry = scheduler_.take();
        if (!entry) continue;
        const auto it = sessions_.find(entry->id);
        if (it == sessions_.end()) continue;  // cancelled + erased underneath
        const std::shared_ptr<Session> session = it->second;
        session->state = SessionState::kRunning;
        session->last_dispatched = ++dispatch_clock_;
        ++running_;
        lock.unlock();

        QuantumOutcome outcome = run_one_quantum(*session);

        lock.lock();
        --running_;
        Settled settled = settle_after_quantum(*session, std::move(outcome));
        scheduler_.give_back(std::move(*entry), settled.runnable);
        lock.unlock();
        if (settled.runnable) work_cv_.notify_one();
        idle_cv_.notify_all();
        if (!settled.state_event.empty()) publish(*session, settled.state_event);
        lock.lock();
    }
}

RunRegistry::QuantumOutcome RunRegistry::run_one_quantum(Session& session) {
    QuantumOutcome outcome;
    try {
        if (!session.checkpoint.has_value() && session.checkpoint_on_disk) {
            session.checkpoint = store_.load_checkpoint(session.id);
            outcome.faulted = true;
        }
        if (session.protocol == nullptr) session.protocol = build_protocol(session.spec);
        const CountConfiguration initial = build_initial(*session.protocol, session.spec);

        CaptureSink capture(outcome.checkpoint);
        const bool first_segment = !session.checkpoint.has_value();
        SessionTrace trace(*this, session, first_segment);
        TeeObserver observers({&metrics_, &trace});

        telemetry::RunTelemetryCollector telemetry_collector;

        RunOptions options;
        options.engine = parse_engine_name(session.spec.engine);
        options.threads = session.spec.threads;
        options.seed = session.spec.seed;
        options.max_interactions = session.spec.budget;
        options.observer = &observers;
        if (session.spec.snapshot_every != 0)
            options.snapshots = SnapshotSchedule::every(session.spec.snapshot_every);
        if (session.spec.telemetry) options.telemetry = &telemetry_collector;
        options.checkpoint_sink = &capture;
        options.stop_flag = &session.stop_requested;
        if (session.checkpoint.has_value()) options.resume_from = &*session.checkpoint;

        // The pause boundary is the next absolute multiple of the quantum
        // length: the grid is a property of the session, not of server
        // load, so sliced execution replays the uninterrupted trajectory.
        const std::uint64_t done =
            session.checkpoint.has_value() ? session.checkpoint->interactions : 0;
        options.pause_after = (done / session.quantum + 1) * session.quantum;

        // Non-uniform pairing models go through the scenario front door;
        // everything else (quantum grid, checkpoint capture, observers,
        // telemetry) is identical because both paths share the run-loop
        // kernel.
        if (session.spec.model != "uniform")
            outcome.result = run_scenario(*session.protocol, initial,
                                          scenario_spec_from(session.spec), options);
        else
            outcome.result = run_simulation(*session.protocol, initial, options);
    } catch (const std::exception& error) {
        outcome.error = error.what();
        if (outcome.error.empty()) outcome.error = "unknown error";
    }
    return outcome;
}

RunRegistry::Settled RunRegistry::settle_after_quantum(Session& session,
                                                       QuantumOutcome outcome) {
    Settled settled;
    ++quanta_executed_;
    ++session.quanta;
    if (outcome.faulted) ++faults_;

    const auto state_event = [&](const char* state) {
        return "{\"session\":" + json_quote(session.id) +
               ",\"event\":\"state\",\"state\":\"" + state + "\"}";
    };

    if (!outcome.error.empty()) {
        session.state = SessionState::kFailed;
        session.error = outcome.error;
        session.checkpoint.reset();
        session.protocol.reset();
        if (session.checkpoint_on_disk) {
            store_.remove(session.id);
            session.checkpoint_on_disk = false;
        }
        session.pending = Session::PendingOp::kNone;
        session.stop_requested.store(false);
        settled.state_event = state_event("failed");
        return settled;
    }

    const RunResult& result = *outcome.result;
    session.interactions = result.interactions;
    session.effective_interactions = result.effective_interactions;
    session.last_output_change = result.last_output_change;

    if (result.stop_reason != StopReason::kPaused) {
        session.state = SessionState::kDone;
        session.stop_reason = result.stop_reason;
        session.consensus = result.consensus;
        session.checkpoint.reset();
        session.protocol.reset();
        if (session.checkpoint_on_disk) {
            store_.remove(session.id);
            session.checkpoint_on_disk = false;
        }
        session.pending = Session::PendingOp::kNone;
        session.stop_requested.store(false);
        settled.state_event = state_event("done");
        return settled;
    }

    // A paused quantum always carries the boundary checkpoint.
    session.checkpoint = std::move(outcome.checkpoint);
    const Session::PendingOp pending = session.pending;
    session.pending = Session::PendingOp::kNone;
    session.stop_requested.store(false);

    if (pending == Session::PendingOp::kCancel) {
        session.state = SessionState::kCancelled;
        session.checkpoint.reset();
        session.protocol.reset();
        if (session.checkpoint_on_disk) {
            store_.remove(session.id);
            session.checkpoint_on_disk = false;
        }
        settled.state_event = state_event("cancelled");
        return settled;
    }
    if (pending == Session::PendingOp::kSuspend || draining_ || stopping_) {
        session.state = SessionState::kSuspended;
        if (pending == Session::PendingOp::kSuspend) {
            settled.state_event = state_event("suspended");
            evict_lru_locked();
        }
        return settled;
    }
    session.state = SessionState::kQueued;
    settled.runnable = true;
    return settled;
}

void RunRegistry::evict_lru_locked() {
    for (;;) {
        std::vector<Session*> resident;
        for (auto& [id, session] : sessions_) {
            if (session->state == SessionState::kSuspended && session->checkpoint.has_value())
                resident.push_back(session.get());
        }
        if (resident.size() <= options_.max_resident_suspended) return;
        Session* victim = *std::min_element(
            resident.begin(), resident.end(), [](const Session* a, const Session* b) {
                return a->last_dispatched < b->last_dispatched;
            });
        store_.save_checkpoint(victim->id, *victim->checkpoint);
        store_.save_manifest(victim->id, manifest_json(*victim));
        victim->checkpoint.reset();
        victim->protocol.reset();
        victim->checkpoint_on_disk = true;
        victim->state = SessionState::kEvicted;
        ++evictions_;
    }
}

std::string RunRegistry::manifest_json(const Session& session) const {
    JsonValue::Object object;
    object.emplace_back("id", JsonValue(session.id));
    object.emplace_back("state",
                        JsonValue(std::string(session_state_name(session.state))));
    object.emplace_back("spec", session_spec_to_json(session.spec));
    object.emplace_back("interactions", JsonValue(session.interactions));
    object.emplace_back("effective_interactions",
                        JsonValue(session.effective_interactions));
    object.emplace_back("last_output_change", JsonValue(session.last_output_change));
    object.emplace_back("quanta", JsonValue(session.quanta));
    if (session.stop_reason)
        object.emplace_back(
            "stop_reason",
            JsonValue(std::string(stop_reason_manifest_name(*session.stop_reason))));
    if (session.consensus)
        object.emplace_back("consensus", JsonValue(std::uint64_t{*session.consensus}));
    if (!session.error.empty()) object.emplace_back("error", JsonValue(session.error));
    return JsonValue(std::move(object)).to_string();
}

std::string RunRegistry::stats_json() const {
    std::uint64_t by_state[7] = {};
    std::uint64_t submitted = 0, evictions = 0, faults = 0, quanta = 0;
    std::size_t num_sessions = 0, queue_depth = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& [id, session] : sessions_)
            ++by_state[static_cast<int>(session->state)];
        submitted = submitted_;
        evictions = evictions_;
        faults = faults_;
        quanta = quanta_executed_;
        num_sessions = sessions_.size();
        queue_depth = backlog_locked();
    }
    std::string out = "{\"sessions\":{";
    const SessionState states[] = {
        SessionState::kQueued,    SessionState::kRunning, SessionState::kSuspended,
        SessionState::kEvicted,   SessionState::kDone,    SessionState::kFailed,
        SessionState::kCancelled,
    };
    bool first = true;
    for (const SessionState state : states) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += session_state_name(state);
        out += "\":";
        out += std::to_string(by_state[static_cast<int>(state)]);
    }
    out += "},\"total_sessions\":" + std::to_string(num_sessions);
    out += ",\"queue_depth\":" + std::to_string(queue_depth);
    out += ",\"max_queued\":" + std::to_string(options_.max_queued);
    out += ",\"submitted\":" + std::to_string(submitted);
    out += ",\"evictions\":" + std::to_string(evictions);
    out += ",\"faults\":" + std::to_string(faults);
    out += ",\"quanta\":" + std::to_string(quanta);
    out += ",\"workers\":" + std::to_string(workers_.size());
    out += ",\"metrics\":" + metrics_.report().to_json();
    out += '}';
    return out;
}

void RunRegistry::drain() {
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (draining_) return;
        draining_ = true;
        for (auto& [id, session] : sessions_) {
            if (session->state == SessionState::kRunning)
                session->stop_requested.store(true);
        }
        work_cv_.notify_all();
        idle_cv_.wait(lock, [&] { return running_ == 0; });
    }
    for (std::thread& worker : workers_) {
        if (worker.joinable()) worker.join();
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, session] : sessions_) {
        const SessionState state = session->state;
        const bool terminal = state == SessionState::kDone ||
                              state == SessionState::kFailed ||
                              state == SessionState::kCancelled;
        if (!terminal && session->checkpoint.has_value()) {
            store_.save_checkpoint(id, *session->checkpoint);
            session->checkpoint_on_disk = true;
        }
        store_.save_manifest(id, manifest_json(*session));
    }
}

std::size_t RunRegistry::restore() {
    const auto manifests = store_.list_manifests();
    for (const auto& [id, manifest] : manifests) restore_one(id, manifest);
    work_cv_.notify_all();
    return manifests.size();
}

void RunRegistry::restore_one(const std::string& id, const std::string& manifest) {
    const JsonValue parsed = parse_json(manifest);
    const JsonValue* spec_value = parsed.find("spec");
    require(spec_value != nullptr, "manifest for " + id + " has no 'spec'");

    auto session = std::make_shared<Session>();
    session->id = id;
    session->spec = parse_session_spec(*spec_value);
    session->quantum =
        session->spec.quantum != 0 ? session->spec.quantum : options_.default_quantum;
    if (const JsonValue* value = parsed.find("interactions"))
        session->interactions = value->as_u64("'interactions'");
    if (const JsonValue* value = parsed.find("effective_interactions"))
        session->effective_interactions = value->as_u64("'effective_interactions'");
    if (const JsonValue* value = parsed.find("last_output_change"))
        session->last_output_change = value->as_u64("'last_output_change'");
    if (const JsonValue* value = parsed.find("quanta"))
        session->quanta = value->as_u64("'quanta'");
    if (const JsonValue* value = parsed.find("stop_reason"))
        session->stop_reason = parse_stop_reason_name(value->as_string("'stop_reason'"));
    if (const JsonValue* value = parsed.find("consensus"))
        session->consensus = static_cast<Symbol>(value->as_u64("'consensus'"));
    if (const JsonValue* value = parsed.find("error"))
        session->error = value->as_string("'error'");

    const JsonValue* state_value = parsed.find("state");
    require(state_value != nullptr, "manifest for " + id + " has no 'state'");
    const SessionState state = parse_session_state_name(state_value->as_string("'state'"));

    std::unique_lock<std::mutex> lock(mutex_);
    require(sessions_.find(id) == sessions_.end(), "restore: duplicate session " + id);
    // Keep fresh submissions from colliding with restored ids.
    if (id.size() > 2 && id.compare(0, 2, "s-") == 0) {
        std::uint64_t number = 0;
        bool numeric = true;
        for (std::size_t i = 2; i < id.size(); ++i) {
            if (id[i] < '0' || id[i] > '9') {
                numeric = false;
                break;
            }
            number = number * 10 + static_cast<std::uint64_t>(id[i] - '0');
        }
        if (numeric && number >= next_session_number_) next_session_number_ = number + 1;
    }

    const bool terminal = state == SessionState::kDone || state == SessionState::kFailed ||
                          state == SessionState::kCancelled;
    if (terminal) {
        session->state = state;
    } else {
        // Everything in flight resumes from the queue; the spilled
        // checkpoint (if any) is faulted back on first dispatch.
        session->state = SessionState::kQueued;
        session->checkpoint_on_disk = store_.has_checkpoint(id);
        scheduler_.add(id, session->spec.weight);
    }
    sessions_.emplace(id, std::move(session));
}

void RunRegistry::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [&] { return scheduler_.empty() && running_ == 0; });
}

}  // namespace popproto::service
