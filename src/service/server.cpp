#include "service/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "service/wire.h"

namespace popproto::service {

namespace {

void close_fd(int& fd) {
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

}  // namespace

WireServer::WireServer(RunRegistry& registry, ServerOptions options)
    : registry_(registry), options_(std::move(options)) {}

WireServer::~WireServer() { stop(); }

void WireServer::start() {
    if (!options_.unix_path.empty()) {
        listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listen_fd_ < 0)
            throw std::runtime_error(std::string("server: socket: ") + std::strerror(errno));
        sockaddr_un address{};
        address.sun_family = AF_UNIX;
        if (options_.unix_path.size() >= sizeof(address.sun_path))
            throw std::runtime_error("server: unix socket path too long: " +
                                     options_.unix_path);
        std::strncpy(address.sun_path, options_.unix_path.c_str(),
                     sizeof(address.sun_path) - 1);
        ::unlink(options_.unix_path.c_str());  // stale socket from a previous daemon
        if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address), sizeof(address)) < 0) {
            const std::string message = std::string("server: bind ") + options_.unix_path +
                                        ": " + std::strerror(errno);
            close_fd(listen_fd_);
            throw std::runtime_error(message);
        }
    } else {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0)
            throw std::runtime_error(std::string("server: socket: ") + std::strerror(errno));
        const int reuse = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        address.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
        if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address), sizeof(address)) < 0) {
            const std::string message = std::string("server: bind 127.0.0.1:") +
                                        std::to_string(options_.tcp_port) + ": " +
                                        std::strerror(errno);
            close_fd(listen_fd_);
            throw std::runtime_error(message);
        }
        sockaddr_in bound{};
        socklen_t bound_len = sizeof(bound);
        if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0)
            tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
    if (::listen(listen_fd_, 128) < 0) {
        const std::string message = std::string("server: listen: ") + std::strerror(errno);
        close_fd(listen_fd_);
        throw std::runtime_error(message);
    }
    accept_thread_ = std::thread([this] { accept_loop(); });
}

void WireServer::stop() {
    if (stopping_.exchange(true)) {
        if (accept_thread_.joinable()) accept_thread_.join();
        return;
    }
    // Shut the listener down first so accept() unblocks, then every
    // connection so their readers unblock.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    close_fd(listen_fd_);
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::pair<std::shared_ptr<Connection>, std::thread>> connections;
    {
        const std::lock_guard<std::mutex> lock(connections_mutex_);
        connections.swap(connections_);
    }
    for (auto& [connection, thread] : connections) {
        connection->alive.store(false);
        if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
        if (thread.joinable()) thread.join();
        close_fd(connection->fd);
    }
    if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void WireServer::accept_loop() {
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load()) return;
            if (errno == EINTR) continue;
            return;  // listener closed underneath us
        }
        auto connection = std::make_shared<Connection>();
        connection->fd = fd;
        // Register before starting the reader so a subscribe on the very
        // first line already finds its Connection in the list.
        const std::lock_guard<std::mutex> lock(connections_mutex_);
        if (stopping_.load()) {
            // stop() already swapped the list out; don't adopt strays.
            ::close(fd);
            continue;
        }
        connections_.emplace_back(
            connection, std::thread([this, connection] { connection_loop(connection); }));
    }
}

bool WireServer::send_line(Connection& connection, const std::string& line) {
    const std::lock_guard<std::mutex> lock(connection.write_mutex);
    if (!connection.alive.load()) return false;
    std::string frame = line;
    frame += '\n';
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n = ::send(connection.fd, frame.data() + sent, frame.size() - sent,
                                 MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            connection.alive.store(false);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

void WireServer::handle_line(Connection& connection, const std::string& line) {
    WireRequest request;
    try {
        request = parse_request(line);
    } catch (const std::exception& error) {
        send_line(connection, error_response(std::nullopt, error.what()));
        return;
    }
    if (const std::optional<std::string> response = dispatch_request(registry_, request)) {
        send_line(connection, *response);
        return;
    }
    // Transport-level commands.
    try {
        if (request.command == "shutdown") {
            shutdown_requested_.store(true);
            send_line(connection, ok_response(request.request_id));
            return;
        }
        const JsonValue* session = request.payload.find("session");
        if (session == nullptr)
            throw std::invalid_argument("\"" + request.command + "\" requires 'session'");
        const std::string id = session->as_string("'session'");
        if (request.command == "subscribe") {
            const std::uint64_t token = next_token_.fetch_add(1);
            // The sink holds the Connection alive even after teardown; a
            // dead connection just swallows lines.
            const std::shared_ptr<Connection> holder = [&] {
                const std::lock_guard<std::mutex> lock(connections_mutex_);
                for (const auto& [candidate, thread] : connections_) {
                    if (candidate.get() == &connection) return candidate;
                }
                return std::shared_ptr<Connection>();
            }();
            // Ack before registering the sink so the response always
            // precedes the event stream (a terminal session publishes its
            // synthetic state event synchronously from subscribe).  The
            // status call up front keeps unknown ids on the error path.
            (void)registry_.status(id);
            {
                const std::lock_guard<std::mutex> lock(connection.subscription_mutex);
                connection.subscriptions.emplace_back(id, token);
            }
            JsonValue::Object fields;
            fields.emplace_back("session", JsonValue(id));
            fields.emplace_back("token", JsonValue(token));
            send_line(connection, ok_response(request.request_id, std::move(fields)));
            registry_.subscribe(id, token, [holder](const std::string& event) {
                if (holder != nullptr && holder->alive.load()) send_line(*holder, event);
            });
            return;
        }
        if (request.command == "unsubscribe") {
            std::vector<std::pair<std::string, std::uint64_t>> removed;
            {
                const std::lock_guard<std::mutex> lock(connection.subscription_mutex);
                auto& subscriptions = connection.subscriptions;
                for (auto it = subscriptions.begin(); it != subscriptions.end();) {
                    if (it->first == id) {
                        removed.push_back(*it);
                        it = subscriptions.erase(it);
                    } else {
                        ++it;
                    }
                }
            }
            for (const auto& [session_id, token] : removed)
                registry_.unsubscribe(session_id, token);
            JsonValue::Object fields;
            fields.emplace_back("session", JsonValue(id));
            send_line(connection, ok_response(request.request_id, std::move(fields)));
            return;
        }
        send_line(connection, error_response(request.request_id,
                                             "unknown command \"" + request.command + "\""));
    } catch (const std::exception& error) {
        send_line(connection, error_response(request.request_id, error.what()));
    }
}

void WireServer::connection_loop(std::shared_ptr<Connection> connection) {
    std::string buffer;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(connection->fd, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (;;) {
            const std::size_t newline = buffer.find('\n', start);
            if (newline == std::string::npos) break;
            std::string line = buffer.substr(start, newline - start);
            if (!line.empty() && line.back() == '\r') line.pop_back();
            start = newline + 1;
            if (!line.empty()) handle_line(*connection, line);
        }
        buffer.erase(0, start);
        if (buffer.size() > (std::size_t{1} << 22))
            break;  // a 4 MiB line is not a protocol frame; drop the peer
    }
    connection->alive.store(false);
    std::vector<std::pair<std::string, std::uint64_t>> subscriptions;
    {
        const std::lock_guard<std::mutex> lock(connection->subscription_mutex);
        subscriptions.swap(connection->subscriptions);
    }
    for (const auto& [session_id, token] : subscriptions)
        registry_.unsubscribe(session_id, token);
}

}  // namespace popproto::service
