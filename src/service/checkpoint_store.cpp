#include "service/checkpoint_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace popproto::service {

namespace {

constexpr const char* kCheckpointSuffix = ".ckpt";
constexpr const char* kManifestSuffix = ".session";

/// Manifest analogue of write_checkpoint_atomic: a reader (or a crashed
/// previous daemon) never observes a torn manifest.
void write_text_atomic(const std::string& path, const std::string& text) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            throw std::runtime_error("checkpoint store: cannot open " + tmp + ": " +
                                     std::strerror(errno));
        out << text;
        out.flush();
        if (!out) {
            const int saved_errno = errno;
            out.close();
            std::remove(tmp.c_str());
            throw std::runtime_error("checkpoint store: cannot write " + tmp + ": " +
                                     std::strerror(saved_errno));
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int saved_errno = errno;
        std::remove(tmp.c_str());
        throw std::runtime_error("checkpoint store: cannot rename " + tmp + " to " + path +
                                 ": " + std::strerror(saved_errno));
    }
}

}  // namespace

CheckpointStore::CheckpointStore(std::string directory) : directory_(std::move(directory)) {
    std::error_code error;
    std::filesystem::create_directories(directory_, error);
    if (error)
        throw std::runtime_error("checkpoint store: cannot create " + directory_ + ": " +
                                 error.message());
}

std::string CheckpointStore::checkpoint_path(const std::string& id) const {
    return directory_ + "/" + id + kCheckpointSuffix;
}

std::string CheckpointStore::manifest_path(const std::string& id) const {
    return directory_ + "/" + id + kManifestSuffix;
}

void CheckpointStore::save_checkpoint(const std::string& id,
                                      const RunCheckpoint& checkpoint) const {
    write_checkpoint_atomic(checkpoint_path(id), checkpoint);
}

void CheckpointStore::save_manifest(const std::string& id, const std::string& json_line) const {
    write_text_atomic(manifest_path(id), json_line + "\n");
}

bool CheckpointStore::has_checkpoint(const std::string& id) const {
    std::error_code error;
    return std::filesystem::exists(checkpoint_path(id), error);
}

RunCheckpoint CheckpointStore::load_checkpoint(const std::string& id) const {
    return read_checkpoint_file(checkpoint_path(id));
}

std::string CheckpointStore::load_manifest(const std::string& id) const {
    const std::string path = manifest_path(id);
    std::ifstream in(path);
    if (!in) throw std::runtime_error("checkpoint store: cannot open " + path);
    std::string line;
    std::getline(in, line);
    if (line.empty()) throw std::runtime_error("checkpoint store: empty manifest " + path);
    return line;
}

std::vector<std::pair<std::string, std::string>> CheckpointStore::list_manifests() const {
    std::vector<std::pair<std::string, std::string>> manifests;
    std::error_code error;
    for (const auto& entry : std::filesystem::directory_iterator(directory_, error)) {
        const std::string filename = entry.path().filename().string();
        const std::size_t suffix_len = std::strlen(kManifestSuffix);
        if (filename.size() <= suffix_len ||
            filename.compare(filename.size() - suffix_len, suffix_len, kManifestSuffix) != 0)
            continue;
        const std::string id = filename.substr(0, filename.size() - suffix_len);
        manifests.emplace_back(id, load_manifest(id));
    }
    std::sort(manifests.begin(), manifests.end());
    return manifests;
}

void CheckpointStore::remove(const std::string& id) const {
    std::error_code error;
    std::filesystem::remove(checkpoint_path(id), error);
    std::filesystem::remove(manifest_path(id), error);
}

}  // namespace popproto::service
