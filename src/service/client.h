// Blocking JSONL client for the service daemon.
//
// Used by the popctl executable, the service tests, and anything else that
// wants to talk to serve_popproto without hand-rolling sockets.  One
// request() is one round trip; subscribe streams arrive via read_line()
// (responses to later requests interleave with events — callers watch for
// the "ok" key to tell them apart, like popctl's watch command does).

#ifndef POPPROTO_SERVICE_CLIENT_H
#define POPPROTO_SERVICE_CLIENT_H

#include <string>

namespace popproto::service {

class ServiceClient {
public:
    /// Both throw std::runtime_error naming the endpoint on failure.
    static ServiceClient connect_unix(const std::string& path);
    static ServiceClient connect_tcp(const std::string& host, int port);

    ServiceClient(ServiceClient&& other) noexcept;
    ServiceClient& operator=(ServiceClient&& other) noexcept;
    ServiceClient(const ServiceClient&) = delete;
    ServiceClient& operator=(const ServiceClient&) = delete;
    ~ServiceClient();

    /// Sends one request line and returns the next received line.
    std::string request(const std::string& line);

    void send_line(const std::string& line);

    /// Next line from the daemon; throws std::runtime_error when the
    /// connection closes first.
    std::string read_line();

private:
    explicit ServiceClient(int fd) : fd_(fd) {}

    int fd_ = -1;
    std::string buffer_;
};

}  // namespace popproto::service

#endif  // POPPROTO_SERVICE_CLIENT_H
