#include "service/session.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/require.h"
#include "presburger/atom_protocols.h"
#include "presburger/compiler.h"
#include "presburger/parser.h"
#include "protocols/counting.h"
#include "protocols/epidemic.h"
#include "scenarios/games.h"
#include "scenarios/scenario_spec.h"

namespace popproto::service {

namespace {

std::uint64_t u64_field(const JsonValue& object, const char* key, std::uint64_t fallback) {
    const JsonValue* value = object.find(key);
    return value != nullptr ? value->as_u64(std::string("'") + key + "'") : fallback;
}

std::string string_field(const JsonValue& object, const char* key, const std::string& fallback) {
    const JsonValue* value = object.find(key);
    return value != nullptr ? value->as_string(std::string("'") + key + "'") : fallback;
}

}  // namespace

SessionSpec parse_session_spec(const JsonValue& object) {
    SessionSpec spec;
    spec.protocol = string_field(object, "protocol", spec.protocol);
    spec.predicate = string_field(object, "predicate", spec.predicate);
    spec.engine = string_field(object, "engine", spec.engine);
    spec.name = string_field(object, "name", spec.name);
    spec.seed = u64_field(object, "seed", spec.seed);
    spec.budget = u64_field(object, "budget", spec.budget);
    spec.quantum = u64_field(object, "quantum", spec.quantum);
    spec.weight = u64_field(object, "weight", spec.weight);
    spec.snapshot_every = u64_field(object, "snapshot_every", spec.snapshot_every);
    if (const JsonValue* telemetry = object.find("telemetry"); telemetry != nullptr)
        spec.telemetry = telemetry->as_bool("'telemetry'");
    require(spec.weight >= 1, "'weight' must be at least 1");

    const std::uint64_t threshold = u64_field(object, "threshold", spec.threshold);
    require(threshold >= 1 && threshold <= std::numeric_limits<std::uint32_t>::max(),
            "'threshold' out of range");
    spec.threshold = static_cast<std::uint32_t>(threshold);

    const std::uint64_t threads = u64_field(object, "threads", spec.threads);
    require(threads <= 4096, "'threads' out of range");
    spec.threads = static_cast<unsigned>(threads);

    const JsonValue* counts = object.find("counts");
    require(counts != nullptr, "submit requires 'counts' (agents per input symbol)");
    for (const JsonValue& element : counts->as_array("'counts'"))
        spec.counts.push_back(element.as_u64("'counts' element"));
    require(!spec.counts.empty(), "'counts' must be non-empty");

    spec.model = string_field(object, "model", spec.model);
    spec.probe = u64_field(object, "probe", spec.probe);
    spec.phase_length = u64_field(object, "phase_length", spec.phase_length);
    spec.torus_width = u64_field(object, "torus_width", spec.torus_width);
    spec.torus_height = u64_field(object, "torus_height", spec.torus_height);
    spec.radius = u64_field(object, "radius", spec.radius);
    if (const JsonValue* phases = object.find("phases"); phases != nullptr) {
        for (const JsonValue& element : phases->as_array("'phases'"))
            spec.phases.push_back(element.as_string("'phases' element"));
    }

    // Validate the cross-field contract eagerly, so a bad submit fails at
    // the wire instead of inside a worker quantum.
    parse_engine_name(spec.engine);
    if (spec.protocol == "predicate")
        require(!spec.predicate.empty(), "protocol \"predicate\" requires 'predicate'");
    if (spec.model != "uniform") {
        const std::vector<std::string>& names = scenario_model_names();
        require(std::find(names.begin(), names.end(), spec.model) != names.end(),
                "unknown model \"" + spec.model +
                    "\" (uniform, round_robin, sweep, adversarial, dynamic_graph, "
                    "grid_mobility)");
        require(spec.engine == "auto", "'model' other than uniform requires engine \"auto\"");
        require(spec.threads <= 1, "'model' other than uniform requires threads <= 1");
        if (spec.model == "dynamic_graph")
            require(!spec.phases.empty(), "model \"dynamic_graph\" requires 'phases'");
    }
    return spec;
}

JsonValue session_spec_to_json(const SessionSpec& spec) {
    JsonValue::Object object;
    object.emplace_back("protocol", JsonValue(spec.protocol));
    if (!spec.predicate.empty()) object.emplace_back("predicate", JsonValue(spec.predicate));
    if (spec.protocol == "counting")
        object.emplace_back("threshold", JsonValue(std::uint64_t{spec.threshold}));
    JsonValue::Array counts;
    for (const std::uint64_t count : spec.counts) counts.emplace_back(count);
    object.emplace_back("counts", JsonValue(std::move(counts)));
    object.emplace_back("engine", JsonValue(spec.engine));
    if (spec.model != "uniform") {
        object.emplace_back("model", JsonValue(spec.model));
        if (spec.model == "adversarial")
            object.emplace_back("probe", JsonValue(spec.probe));
        if (spec.model == "dynamic_graph") {
            JsonValue::Array phases;
            for (const std::string& phase : spec.phases) phases.emplace_back(phase);
            object.emplace_back("phases", JsonValue(std::move(phases)));
            if (spec.phase_length != 0)
                object.emplace_back("phase_length", JsonValue(spec.phase_length));
        }
        if (spec.model == "grid_mobility") {
            if (spec.torus_width != 0)
                object.emplace_back("torus_width", JsonValue(spec.torus_width));
            if (spec.torus_height != 0)
                object.emplace_back("torus_height", JsonValue(spec.torus_height));
            object.emplace_back("radius", JsonValue(spec.radius));
        }
    }
    object.emplace_back("threads", JsonValue(std::uint64_t{spec.threads}));
    object.emplace_back("seed", JsonValue(spec.seed));
    object.emplace_back("budget", JsonValue(spec.budget));
    object.emplace_back("quantum", JsonValue(spec.quantum));
    object.emplace_back("weight", JsonValue(spec.weight));
    if (spec.snapshot_every != 0)
        object.emplace_back("snapshot_every", JsonValue(spec.snapshot_every));
    if (spec.telemetry) object.emplace_back("telemetry", JsonValue(true));
    if (!spec.name.empty()) object.emplace_back("name", JsonValue(spec.name));
    return JsonValue(std::move(object));
}

std::unique_ptr<TabulatedProtocol> build_protocol(const SessionSpec& spec) {
    if (spec.protocol == "epidemic") return make_epidemic_protocol();
    if (spec.protocol == "counting") return make_counting_protocol(spec.threshold);
    if (spec.protocol == "majority")
        // [ x_0 - x_1 < 0 ]: true iff the 1-voters outnumber the 0-voters
        // (same convention as the trace_run example).
        return make_threshold_protocol({1, -1}, 0);
    if (spec.protocol == "predicate") {
        const Formula formula = parse_formula(spec.predicate);
        const std::size_t num_symbols =
            std::max<std::size_t>(formula.num_variables(), spec.counts.size());
        return compile_formula(formula, num_symbols);
    }
    if (spec.protocol == "pavlov")
        return make_game_protocol(make_pavlov_prisoners_dilemma());
    throw std::invalid_argument("unknown protocol \"" + spec.protocol +
                                "\" (epidemic|counting|majority|predicate|pavlov)");
}

CountConfiguration build_initial(const TabulatedProtocol& protocol, const SessionSpec& spec) {
    require(spec.counts.size() <= protocol.num_input_symbols(),
            "'counts' has more entries than the protocol has input symbols");
    std::vector<std::uint64_t> counts = spec.counts;
    counts.resize(protocol.num_input_symbols(), 0);
    return CountConfiguration::from_input_counts(protocol, counts);
}

ScenarioSpec scenario_spec_from(const SessionSpec& spec) {
    ScenarioSpec scenario;
    scenario.model = spec.model;
    scenario.probe = spec.probe;
    scenario.phases = spec.phases;
    scenario.phase_length = spec.phase_length;
    scenario.torus_width = spec.torus_width;
    scenario.torus_height = spec.torus_height;
    scenario.radius = spec.radius;
    return scenario;
}

SimulationEngine parse_engine_name(const std::string& name) {
    if (name == "auto") return SimulationEngine::kAuto;
    if (name == "agent") return SimulationEngine::kAgentArray;
    if (name == "batch") return SimulationEngine::kCountBatch;
    if (name == "collapsed") return SimulationEngine::kCollapsedBatch;
    if (name == "adaptive") return SimulationEngine::kAdaptive;
    throw std::invalid_argument("unknown engine \"" + name +
                                "\" (auto|agent|batch|collapsed|adaptive)");
}

const char* session_state_name(SessionState state) {
    switch (state) {
        case SessionState::kQueued:
            return "queued";
        case SessionState::kRunning:
            return "running";
        case SessionState::kSuspended:
            return "suspended";
        case SessionState::kEvicted:
            return "evicted";
        case SessionState::kDone:
            return "done";
        case SessionState::kFailed:
            return "failed";
        case SessionState::kCancelled:
            return "cancelled";
    }
    return "unknown";
}

namespace {

const char* stop_reason_wire_name(StopReason reason) {
    switch (reason) {
        case StopReason::kSilent:
            return "silent";
        case StopReason::kStableOutputs:
            return "stable_outputs";
        case StopReason::kBudget:
            return "budget";
        case StopReason::kPaused:
            return "paused";
    }
    return "unknown";
}

}  // namespace

JsonValue session_status_to_json(const SessionStatus& status) {
    JsonValue::Object object;
    object.emplace_back("session", JsonValue(status.id));
    if (!status.name.empty()) object.emplace_back("name", JsonValue(status.name));
    object.emplace_back("state", JsonValue(std::string(session_state_name(status.state))));
    object.emplace_back("interactions", JsonValue(status.interactions));
    object.emplace_back("effective_interactions", JsonValue(status.effective_interactions));
    object.emplace_back("quanta", JsonValue(status.quanta));
    if (status.stop_reason) {
        object.emplace_back(
            "stop_reason", JsonValue(std::string(stop_reason_wire_name(*status.stop_reason))));
        object.emplace_back("last_output_change", JsonValue(status.last_output_change));
        if (status.consensus)
            object.emplace_back("consensus", JsonValue(std::uint64_t{*status.consensus}));
        else
            object.emplace_back("consensus", JsonValue());
    }
    if (!status.error.empty()) object.emplace_back("error", JsonValue(status.error));
    return JsonValue(std::move(object));
}

}  // namespace popproto::service
