// JSONL socket transport for the service daemon.
//
// Listens on a Unix-domain socket (the default deployment: filesystem
// permissions are the access control) or loopback TCP (for popctl across
// a port forward), accepts any number of concurrent connections, and runs
// one reader thread per connection: each received line is parsed
// (wire.h), dispatched against the RunRegistry, and answered with one
// response line.  `subscribe` registers the connection as a LineSink with
// the registry, so trace events interleave with responses on the same
// socket (whole lines, guarded by a per-connection write mutex);
// `shutdown` raises a flag the daemon polls to begin its graceful drain.

#ifndef POPPROTO_SERVICE_SERVER_H
#define POPPROTO_SERVICE_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/registry.h"

namespace popproto::service {

struct ServerOptions {
    /// Unix-domain socket path; takes precedence when non-empty (a stale
    /// file at the path is unlinked before binding).
    std::string unix_path;

    /// TCP port on 127.0.0.1 when `unix_path` is empty; 0 binds an
    /// ephemeral port (query it with tcp_port() after start).
    int tcp_port = 0;
};

class WireServer {
public:
    WireServer(RunRegistry& registry, ServerOptions options);
    ~WireServer();  // stops if still running

    /// Binds, listens, and starts the accept thread; throws
    /// std::runtime_error naming the endpoint on failure.
    void start();

    /// Closes the listener and every connection, joins all threads.
    /// Idempotent.
    void stop();

    /// The bound TCP port (after start; -1 for Unix-socket servers).
    int tcp_port() const { return tcp_port_; }

    /// True once a client issued "shutdown" — the daemon's cue to drain.
    bool shutdown_requested() const { return shutdown_requested_.load(); }

private:
    struct Connection {
        int fd = -1;
        std::mutex write_mutex;
        std::atomic<bool> alive{true};
        /// Sessions this connection subscribed to, for teardown.
        std::mutex subscription_mutex;
        std::vector<std::pair<std::string, std::uint64_t>> subscriptions;
    };

    void accept_loop();
    void connection_loop(std::shared_ptr<Connection> connection);
    void handle_line(Connection& connection, const std::string& line);
    static bool send_line(Connection& connection, const std::string& line);

    RunRegistry& registry_;
    ServerOptions options_;
    int listen_fd_ = -1;
    int tcp_port_ = -1;
    std::thread accept_thread_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> shutdown_requested_{false};
    std::atomic<std::uint64_t> next_token_{1};

    std::mutex connections_mutex_;
    std::vector<std::pair<std::shared_ptr<Connection>, std::thread>> connections_;
};

}  // namespace popproto::service

#endif  // POPPROTO_SERVICE_SERVER_H
