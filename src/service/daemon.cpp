#include "service/daemon.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <thread>

namespace popproto::service {

namespace {

std::atomic<bool> g_terminate{false};

extern "C" void handle_terminate_signal(int) { g_terminate.store(true); }

}  // namespace

int run_daemon(const DaemonOptions& options) {
    g_terminate.store(false);
    try {
        RunRegistry registry(options.registry);
        const std::size_t restored = registry.restore();
        if (options.verbose && restored > 0)
            std::fprintf(stderr, "serve_popproto: restored %zu session(s) from %s\n",
                         restored, registry.store().directory().c_str());

        WireServer server(registry, options.server);
        server.start();
        if (options.verbose) {
            if (!options.server.unix_path.empty())
                std::fprintf(stderr, "serve_popproto: listening on %s\n",
                             options.server.unix_path.c_str());
            else
                std::fprintf(stderr, "serve_popproto: listening on 127.0.0.1:%d\n",
                             server.tcp_port());
        }

        std::signal(SIGTERM, handle_terminate_signal);
        std::signal(SIGINT, handle_terminate_signal);
        while (!g_terminate.load() && !server.shutdown_requested())
            std::this_thread::sleep_for(std::chrono::milliseconds(50));

        if (options.verbose)
            std::fprintf(stderr, "serve_popproto: draining (checkpointing sessions)...\n");
        // Stop the transport first so no new mutations race the drain,
        // then checkpoint everything.
        server.stop();
        registry.drain();
        if (options.verbose) std::fprintf(stderr, "serve_popproto: drained, exiting\n");
        return 0;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "serve_popproto: %s\n", error.what());
        return 1;
    }
}

}  // namespace popproto::service
