// RunRegistry: the session multiplexer at the core of the service daemon.
//
// Thousands of concurrent runs share a small pool of long-running worker
// threads.  Each worker repeatedly asks the DrrScheduler (scheduler.h) for
// the next session and executes one bounded *work quantum* of it: the run
// resumes from its in-memory RunCheckpoint, executes until the next
// absolute multiple of its quantum length (RunOptions::pause_after), saves
// the checkpoint the kernel delivers, and re-enters the fair queue.  Pause
// boundaries therefore sit on a per-session grid that does not depend on
// server load, worker count, or suspend/evict history — which is what makes
// a sliced run's RunResult bit-identical to the uninterrupted run with the
// same seed (run_loop.h; collapsed super-step caveat inherited).
//
// Suspended sessions beyond `max_resident_suspended` are spilled to the
// CheckpointStore by an LRU evictor (least recently dispatched first) and
// faulted back in on their next quantum.  `drain()` — the SIGTERM path —
// cooperatively stops every in-flight quantum at a loop boundary,
// checkpoints every non-terminal session to disk, and writes one manifest
// per session; `restore()` reverses this on restart, losing nothing.
//
// Locking: one registry mutex guards the session table, the scheduler, and
// all lifecycle transitions; quanta execute outside the lock (a kRunning
// session's mutable state is owned by exactly one worker).  Subscriber
// fan-out uses a separate mutex so trace streaming does not serialize
// against scheduling.

#ifndef POPPROTO_SERVICE_REGISTRY_H
#define POPPROTO_SERVICE_REGISTRY_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/run_loop.h"
#include "core/simulator.h"
#include "observe/metrics.h"
#include "service/checkpoint_store.h"
#include "service/scheduler.h"
#include "service/session.h"

namespace popproto::service {

/// Receives one serialized JSONL event line per call; must be thread-safe
/// (events fire on worker threads) and must not call back into the
/// registry.
using LineSink = std::function<void(const std::string&)>;

/// Thrown by submit when the admission queue is at capacity.  Carries the
/// numbers the wire layer needs to build a structured "queue_full" error
/// (dispatch_request emits code/queued/max_queued fields instead of the
/// plain error string).
class QueueFullError : public std::runtime_error {
public:
    QueueFullError(std::size_t queued, std::size_t max_queued)
        : std::runtime_error("submit: admission queue is full (" +
                             std::to_string(queued) + " of " + std::to_string(max_queued) +
                             " sessions queued or running)"),
          queued(queued),
          max_queued(max_queued) {}

    std::size_t queued;
    std::size_t max_queued;
};

struct RegistryOptions {
    /// Worker threads executing quanta; 0 selects hardware concurrency.
    unsigned workers = 1;

    /// Admission bound: submit throws QueueFullError when this many
    /// sessions are already queued or running (0 = unlimited).  Suspended,
    /// evicted, and terminal sessions do not count against the bound.
    std::size_t max_queued = 0;

    /// Quantum length for sessions that do not set SessionSpec::quantum.
    std::uint64_t default_quantum = std::uint64_t{1} << 16;

    /// Suspended sessions whose checkpoints stay in memory; beyond this the
    /// LRU evictor spills to the store (0 = every suspend spills, which is
    /// what the eviction tests use).
    std::size_t max_resident_suspended = 64;

    /// Spill directory (checkpoints + manifests); created on demand.
    std::string spill_dir = "popproto-spill";
};

class RunRegistry {
public:
    explicit RunRegistry(RegistryOptions options);

    /// Stops workers without draining (in-memory state is discarded; use
    /// drain() first for a graceful shutdown).
    ~RunRegistry();

    /// Validates the spec (protocol instantiation included), creates a
    /// session, and queues its first quantum.  Returns the session id
    /// ("s-1", "s-2", ...).  Throws std::invalid_argument on a bad spec.
    std::string submit(const SessionSpec& spec);

    /// Point-in-time status; throws std::invalid_argument for unknown ids.
    SessionStatus status(const std::string& id) const;
    std::vector<SessionStatus> list() const;

    /// Lifecycle commands.  suspend/cancel of a running session interrupt
    /// its quantum cooperatively (the kernel checkpoint at the stop
    /// boundary is kept for suspend, discarded for cancel); both are
    /// idempotent where that is meaningful and throw std::invalid_argument
    /// when the transition is impossible (e.g. resuming a finished run).
    void suspend(const std::string& id);
    void resume(const std::string& id);
    void cancel(const std::string& id);

    /// Streams the session's JSONL trace events ({"session":"s-1",
    /// "event":...}) to `sink` until unsubscribed.  `token` is the caller's
    /// handle for unsubscribe (connection teardown).  A terminal session
    /// immediately receives a final synthetic "state" event.
    void subscribe(const std::string& id, std::uint64_t token, LineSink sink);
    void unsubscribe(const std::string& id, std::uint64_t token);

    /// Aggregate counters: per-state session counts, eviction/fault
    /// totals, quanta executed, and the MetricsCollector aggregate over
    /// every quantum (stats_json embeds MetricsReport::to_json under
    /// "metrics").
    std::string stats_json() const;

    /// Graceful shutdown: stop dispatching, interrupt in-flight quanta at
    /// their next loop boundary, checkpoint every non-terminal session to
    /// the store, and write one manifest per session.  Idempotent.
    void drain();

    /// Recreates sessions from the store's manifests (the complement of
    /// drain, called before serving).  Non-terminal sessions re-enter the
    /// queue and fault their checkpoints back on first dispatch.  Returns
    /// the number of sessions restored.
    std::size_t restore();

    /// Blocks until no session is queued or running (test/drain helper).
    void wait_idle();

    const CheckpointStore& store() const { return store_; }

private:
    struct Session {
        std::string id;
        SessionSpec spec;
        SessionState state = SessionState::kQueued;
        std::uint64_t quantum = 1;  // resolved from spec/default

        // Progress counters (updated under the registry mutex at quantum
        // boundaries; mid-quantum reads see the last boundary).
        std::uint64_t interactions = 0;
        std::uint64_t effective_interactions = 0;
        std::uint64_t last_output_change = 0;
        std::uint64_t quanta = 0;

        // Resumable state.  `checkpoint` is resident iff the session has
        // progress and was not evicted; `checkpoint_on_disk` means the
        // store holds a (possibly additional) copy to fault from.
        std::optional<RunCheckpoint> checkpoint;
        bool checkpoint_on_disk = false;

        // Terminal outcome.
        std::optional<StopReason> stop_reason;
        std::optional<Symbol> consensus;
        std::string error;

        // Compiled protocol, built lazily and dropped on eviction (the
        // spec rebuilds it deterministically).
        std::unique_ptr<TabulatedProtocol> protocol;

        // Cooperative-interrupt plumbing (suspend/cancel/drain).
        std::atomic<bool> stop_requested{false};
        enum class PendingOp { kNone, kSuspend, kCancel } pending = PendingOp::kNone;

        /// LRU stamp: the dispatch clock value of the last quantum.
        std::uint64_t last_dispatched = 0;

        /// Wire subscribers (guarded by subscriber_mutex_); the atomic
        /// count lets the trace observer skip serialization entirely when
        /// nobody is listening.
        std::vector<std::pair<std::uint64_t, LineSink>> subscribers;
        std::atomic<std::size_t> subscriber_count{0};
    };

    /// What one quantum produced, handed from the unlocked execution back
    /// to the locked lifecycle transition.
    struct QuantumOutcome {
        std::optional<RunCheckpoint> checkpoint;  // kPaused quanta only
        std::optional<RunResult> result;          // absent when `error` is set
        std::string error;
        bool faulted = false;  // checkpoint was loaded back from the store
    };

    /// The locked transition's outputs the worker acts on after unlocking.
    struct Settled {
        bool runnable = false;       // session re-enters the ring
        std::string state_event;     // synthetic event to publish, if any
    };

    void worker_loop();
    std::size_t backlog_locked() const;
    QuantumOutcome run_one_quantum(Session& session);
    Settled settle_after_quantum(Session& session, QuantumOutcome outcome);
    void evict_lru_locked();
    void publish(Session& session, const std::string& line);
    std::shared_ptr<Session> find_session(const std::string& id) const;
    std::string manifest_json(const Session& session) const;
    void restore_one(const std::string& id, const std::string& manifest);

    class SessionTrace;
    class CaptureSink;

    RegistryOptions options_;
    CheckpointStore store_;

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;
    DrrScheduler scheduler_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
    bool draining_ = false;
    unsigned running_ = 0;
    std::uint64_t next_session_number_ = 1;
    std::uint64_t dispatch_clock_ = 0;

    // Aggregate counters (under mutex_).
    std::uint64_t submitted_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t faults_ = 0;
    std::uint64_t quanta_executed_ = 0;

    mutable std::mutex subscriber_mutex_;

    MetricsCollector metrics_;
};

}  // namespace popproto::service

#endif  // POPPROTO_SERVICE_REGISTRY_H
