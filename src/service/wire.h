// The newline-delimited JSON wire protocol.
//
// One request per line, one response per line (subscribe additionally
// streams event lines).  The full grammar is documented in DESIGN.md
// "Export schemas"; the shape is:
//
//   -> {"cmd":"submit","id":"r1","protocol":"epidemic","counts":[999,1],
//       "engine":"batch","seed":7,"quantum":65536}
//   <- {"ok":true,"id":"r1","session":"s-1"}
//   -> {"cmd":"status","session":"s-1"}
//   <- {"ok":true,"session":"s-1","state":"queued","interactions":0,...}
//   -> {"cmd":"bogus"}
//   <- {"ok":false,"error":"unknown command \"bogus\""}
//
// `id` is an optional client-chosen correlation tag echoed verbatim.
// Command names: submit, status, list, suspend, resume, cancel, stats,
// ping, subscribe, unsubscribe, shutdown.  This header implements parsing
// and every command that only needs the registry; subscribe/unsubscribe/
// shutdown need the transport connection and are handled by WireServer.

#ifndef POPPROTO_SERVICE_WIRE_H
#define POPPROTO_SERVICE_WIRE_H

#include <optional>
#include <string>

#include "service/json.h"
#include "service/registry.h"

namespace popproto::service {

struct WireRequest {
    std::string command;
    std::optional<std::string> request_id;
    JsonValue payload;  ///< the full request object (command fields included)
};

/// Parses one request line; throws std::invalid_argument for malformed
/// JSON, a non-object frame, or a missing/odd "cmd" field.
WireRequest parse_request(const std::string& line);

/// {"ok":true[,"id":...]<fields...>} — `fields` are appended verbatim.
std::string ok_response(const std::optional<std::string>& request_id,
                        JsonValue::Object fields = {});

/// {"ok":false[,"id":...],"error":"..."}.
std::string error_response(const std::optional<std::string>& request_id,
                           const std::string& message);

/// Executes a registry-only command and returns its response line.
/// Returns nullopt for transport-level commands (subscribe, unsubscribe,
/// shutdown) the caller must handle.  Registry errors become
/// {"ok":false,...} responses, never exceptions.
std::optional<std::string> dispatch_request(RunRegistry& registry, const WireRequest& request);

}  // namespace popproto::service

#endif  // POPPROTO_SERVICE_WIRE_H
