// Weighted deficit-round-robin over session work quanta.
//
// The registry slices every run into bounded quanta (RunOptions::
// pause_after); this scheduler decides whose quantum runs next.  It is the
// classic DRR specialization where every quantum costs one unit: a session
// arriving at the head of the ring recharges its deficit to its weight and
// is dispatched once per unit until the deficit is spent, then rotates to
// the back.  Consequences, both load-bearing for the service:
//
//  * No starvation: within one full rotation ("epoch") every active
//    session is dispatched at least once, regardless of how large the
//    other sessions are — a 2^24-agent run gets its quantum and goes to
//    the back of the ring like everyone else (service_test.cpp proves this
//    in deterministic virtual time).
//  * Weighted shares: a weight-w session receives w quanta per epoch, so
//    relative throughput among backlogged sessions is proportional to
//    weight.
//
// The scheduler is intentionally not thread-safe and knows nothing about
// sessions beyond an id: the registry serializes access under its own lock
// and holds dispatched entries while a worker runs the quantum (a session
// is never in the ring and running at the same time).

#ifndef POPPROTO_SERVICE_SCHEDULER_H
#define POPPROTO_SERVICE_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

namespace popproto::service {

class DrrScheduler {
public:
    /// One ring slot: the session id plus its DRR accounting.  Returned by
    /// `take` so the caller can hand it back via `give_back` with the
    /// deficit intact.
    struct Entry {
        std::string id;
        std::uint64_t weight = 1;
        std::uint64_t deficit = 0;
    };

    /// Appends a session to the back of the ring (deficit 0: it recharges
    /// when it first reaches the head).  Requires weight >= 1; a session
    /// must not be added while present or dispatched.
    void add(std::string id, std::uint64_t weight);

    /// Dispatches the next quantum: pops the head entry (recharging its
    /// deficit first if spent), charges one unit, and transfers ownership
    /// to the caller.  Empty ring returns nullopt.
    std::optional<Entry> take();

    /// Returns a dispatched entry after its quantum.  If `still_runnable`,
    /// the entry re-enters the ring: at the *front* while it has deficit
    /// remaining (continuing its turn keeps the dispatch order identical
    /// to single-threaded DRR), at the back once spent.  Otherwise the
    /// entry is dropped (suspended/finished sessions re-enter via `add`).
    void give_back(Entry entry, bool still_runnable);

    /// Removes a queued session from the ring (cancel/suspend while
    /// queued).  Returns false when the id is not present (e.g. currently
    /// dispatched — the caller handles that via give_back).
    bool remove(const std::string& id);

    bool empty() const { return ring_.empty(); }
    std::size_t size() const { return ring_.size(); }

private:
    std::deque<Entry> ring_;
};

}  // namespace popproto::service

#endif  // POPPROTO_SERVICE_SCHEDULER_H
