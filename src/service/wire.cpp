#include "service/wire.h"

#include <stdexcept>

namespace popproto::service {

namespace {

std::string session_field(const WireRequest& request) {
    const JsonValue* session = request.payload.find("session");
    if (session == nullptr)
        throw std::invalid_argument("\"" + request.command + "\" requires 'session'");
    return session->as_string("'session'");
}

}  // namespace

WireRequest parse_request(const std::string& line) {
    WireRequest request;
    request.payload = parse_json(line);
    if (!request.payload.is_object())
        throw std::invalid_argument("request must be a JSON object");
    const JsonValue* command = request.payload.find("cmd");
    if (command == nullptr) throw std::invalid_argument("request has no 'cmd'");
    request.command = command->as_string("'cmd'");
    if (const JsonValue* id = request.payload.find("id"); id != nullptr)
        request.request_id = id->as_string("'id'");
    return request;
}

std::string ok_response(const std::optional<std::string>& request_id,
                        JsonValue::Object fields) {
    std::string out = "{\"ok\":true";
    if (request_id) out += ",\"id\":" + json_quote(*request_id);
    for (const auto& [key, value] : fields) {
        out += ',';
        out += json_quote(key);
        out += ':';
        value.append_to(out);
    }
    out += '}';
    return out;
}

std::string error_response(const std::optional<std::string>& request_id,
                           const std::string& message) {
    std::string out = "{\"ok\":false";
    if (request_id) out += ",\"id\":" + json_quote(*request_id);
    out += ",\"error\":" + json_quote(message) + "}";
    return out;
}

std::optional<std::string> dispatch_request(RunRegistry& registry,
                                            const WireRequest& request) {
    const std::string& command = request.command;
    if (command == "subscribe" || command == "unsubscribe" || command == "shutdown")
        return std::nullopt;
    try {
        if (command == "submit") {
            const SessionSpec spec = parse_session_spec(request.payload);
            try {
                const std::string session = registry.submit(spec);
                JsonValue::Object fields;
                fields.emplace_back("session", JsonValue(session));
                return ok_response(request.request_id, std::move(fields));
            } catch (const QueueFullError& full) {
                // Structured rejection: admission control is an expected
                // backpressure signal clients retry on, not a plain error.
                std::string out = "{\"ok\":false";
                if (request.request_id) out += ",\"id\":" + json_quote(*request.request_id);
                out += ",\"error\":" + json_quote(full.what());
                out += ",\"code\":\"queue_full\"";
                out += ",\"queued\":" + std::to_string(full.queued);
                out += ",\"max_queued\":" + std::to_string(full.max_queued) + "}";
                return out;
            }
        }
        if (command == "status") {
            const SessionStatus status = registry.status(session_field(request));
            return ok_response(request.request_id,
                               session_status_to_json(status).as_object("status"));
        }
        if (command == "list") {
            JsonValue::Array sessions;
            for (const SessionStatus& status : registry.list())
                sessions.push_back(session_status_to_json(status));
            JsonValue::Object fields;
            fields.emplace_back("sessions", JsonValue(std::move(sessions)));
            return ok_response(request.request_id, std::move(fields));
        }
        if (command == "suspend" || command == "resume" || command == "cancel") {
            const std::string session = session_field(request);
            if (command == "suspend")
                registry.suspend(session);
            else if (command == "resume")
                registry.resume(session);
            else
                registry.cancel(session);
            JsonValue::Object fields;
            fields.emplace_back("session", JsonValue(session));
            return ok_response(request.request_id, std::move(fields));
        }
        if (command == "stats") {
            // stats_json is already serialized; splice it in raw.
            std::string out = "{\"ok\":true";
            if (request.request_id) out += ",\"id\":" + json_quote(*request.request_id);
            out += ",\"stats\":" + registry.stats_json() + "}";
            return out;
        }
        if (command == "ping") return ok_response(request.request_id);
        return error_response(request.request_id, "unknown command \"" + command + "\"");
    } catch (const std::exception& error) {
        return error_response(request.request_id, error.what());
    }
}

}  // namespace popproto::service
