#include "service/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace popproto::service {

namespace {

[[noreturn]] void type_error(const std::string& what, const char* expected) {
    throw std::invalid_argument(what + " must be " + expected);
}

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    JsonValue parse() {
        JsonValue value = parse_value();
        skip_whitespace();
        if (pos_ != text_.size()) fail("trailing characters after value");
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& message) const {
        throw std::invalid_argument("json: offset " + std::to_string(pos_) + ": " + message);
    }

    void skip_whitespace() {
        while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                       text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(const char* literal) {
        std::size_t len = 0;
        while (literal[len] != '\0') ++len;
        if (text_.compare(pos_, len, literal) != 0) return false;
        pos_ += len;
        return true;
    }

    JsonValue parse_value() {
        skip_whitespace();
        const char c = peek();
        switch (c) {
            case '{':
                return parse_object();
            case '[':
                return parse_array();
            case '"':
                return JsonValue(parse_string());
            case 't':
                if (consume_literal("true")) return JsonValue(true);
                fail("invalid literal");
            case 'f':
                if (consume_literal("false")) return JsonValue(false);
                fail("invalid literal");
            case 'n':
                if (consume_literal("null")) return JsonValue();
                fail("invalid literal");
            default:
                return parse_number();
        }
    }

    JsonValue parse_object() {
        expect('{');
        JsonValue::Object members;
        skip_whitespace();
        if (peek() == '}') {
            ++pos_;
            return JsonValue(std::move(members));
        }
        while (true) {
            skip_whitespace();
            std::string key = parse_string();
            skip_whitespace();
            expect(':');
            members.emplace_back(std::move(key), parse_value());
            skip_whitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return JsonValue(std::move(members));
        }
    }

    JsonValue parse_array() {
        expect('[');
        JsonValue::Array elements;
        skip_whitespace();
        if (peek() == ']') {
            ++pos_;
            return JsonValue(std::move(elements));
        }
        while (true) {
            elements.push_back(parse_value());
            skip_whitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return JsonValue(std::move(elements));
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char escape = text_[pos_++];
            switch (escape) {
                case '"':
                    out.push_back('"');
                    break;
                case '\\':
                    out.push_back('\\');
                    break;
                case '/':
                    out.push_back('/');
                    break;
                case 'b':
                    out.push_back('\b');
                    break;
                case 'f':
                    out.push_back('\f');
                    break;
                case 'n':
                    out.push_back('\n');
                    break;
                case 'r':
                    out.push_back('\r');
                    break;
                case 't':
                    out.push_back('\t');
                    break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("bad hex digit in \\u escape");
                    }
                    // UTF-8 encode the code point (surrogate pairs are not
                    // combined — the wire protocol is ASCII in practice).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    } else {
                        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    }
                    break;
                }
                default:
                    fail("unknown escape");
            }
        }
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        bool integral = true;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
            while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-") fail("invalid number");
        if (integral && token[0] != '-') {
            std::uint64_t value = 0;
            const auto [ptr, ec] =
                std::from_chars(token.data(), token.data() + token.size(), value);
            if (ec == std::errc() && ptr == token.data() + token.size())
                return JsonValue(value);
            fail("unsigned integer out of range: " + token);
        }
        if (integral) {
            std::int64_t value = 0;
            const auto [ptr, ec] =
                std::from_chars(token.data(), token.data() + token.size(), value);
            if (ec == std::errc() && ptr == token.data() + token.size())
                return JsonValue(value);
            fail("integer out of range: " + token);
        }
        try {
            return JsonValue(std::stod(token));
        } catch (const std::exception&) {
            fail("invalid number: " + token);
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool(const std::string& what) const {
    if (kind_ != Kind::kBool) type_error(what, "a boolean");
    return bool_;
}

std::uint64_t JsonValue::as_u64(const std::string& what) const {
    if (kind_ == Kind::kUInt) return uint_;
    if (kind_ == Kind::kInt && int_ >= 0) return static_cast<std::uint64_t>(int_);
    type_error(what, "an unsigned integer");
}

double JsonValue::as_double(const std::string& what) const {
    switch (kind_) {
        case Kind::kDouble:
            return double_;
        case Kind::kUInt:
            return static_cast<double>(uint_);
        case Kind::kInt:
            return static_cast<double>(int_);
        default:
            type_error(what, "a number");
    }
}

const std::string& JsonValue::as_string(const std::string& what) const {
    if (kind_ != Kind::kString) type_error(what, "a string");
    return string_;
}

const JsonValue::Array& JsonValue::as_array(const std::string& what) const {
    if (kind_ != Kind::kArray) type_error(what, "an array");
    return array_;
}

const JsonValue::Object& JsonValue::as_object(const std::string& what) const {
    if (kind_ != Kind::kObject) type_error(what, "an object");
    return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
    if (kind_ != Kind::kObject) return nullptr;
    for (const auto& [member_key, value] : object_) {
        if (member_key == key) return &value;
    }
    return nullptr;
}

void JsonValue::append_to(std::string& out) const {
    switch (kind_) {
        case Kind::kNull:
            out += "null";
            return;
        case Kind::kBool:
            out += bool_ ? "true" : "false";
            return;
        case Kind::kUInt:
            out += std::to_string(uint_);
            return;
        case Kind::kInt:
            out += std::to_string(int_);
            return;
        case Kind::kDouble: {
            char buffer[32];
            std::snprintf(buffer, sizeof buffer, "%.17g", double_);
            out += buffer;
            return;
        }
        case Kind::kString:
            out += json_quote(string_);
            return;
        case Kind::kArray: {
            out += '[';
            for (std::size_t i = 0; i < array_.size(); ++i) {
                if (i != 0) out += ',';
                array_[i].append_to(out);
            }
            out += ']';
            return;
        }
        case Kind::kObject: {
            out += '{';
            for (std::size_t i = 0; i < object_.size(); ++i) {
                if (i != 0) out += ',';
                out += json_quote(object_[i].first);
                out += ':';
                object_[i].second.append_to(out);
            }
            out += '}';
            return;
        }
    }
}

std::string JsonValue::to_string() const {
    std::string out;
    append_to(out);
    return out;
}

std::string json_quote(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    for (const char c : text) {
        switch (c) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\t':
                out += "\\t";
                break;
            case '\r':
                out += "\\r";
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    constexpr char kHex[] = "0123456789abcdef";
                    out += "\\u00";
                    out += kHex[(c >> 4) & 0xf];
                    out += kHex[c & 0xf];
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

JsonValue parse_json(const std::string& text) { return Parser(text).parse(); }

}  // namespace popproto::service
