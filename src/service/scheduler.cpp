#include "service/scheduler.h"

#include "core/require.h"

namespace popproto::service {

void DrrScheduler::add(std::string id, std::uint64_t weight) {
    require(weight >= 1, "DrrScheduler: weight must be at least 1");
    for (const Entry& entry : ring_)
        require(entry.id != id, "DrrScheduler: session already queued: " + id);
    ring_.push_back(Entry{std::move(id), weight, 0});
}

std::optional<DrrScheduler::Entry> DrrScheduler::take() {
    if (ring_.empty()) return std::nullopt;
    Entry entry = std::move(ring_.front());
    ring_.pop_front();
    if (entry.deficit == 0) entry.deficit = entry.weight;
    --entry.deficit;
    return entry;
}

void DrrScheduler::give_back(Entry entry, bool still_runnable) {
    if (!still_runnable) return;
    if (entry.deficit > 0)
        ring_.push_front(std::move(entry));
    else
        ring_.push_back(std::move(entry));
}

bool DrrScheduler::remove(const std::string& id) {
    for (auto it = ring_.begin(); it != ring_.end(); ++it) {
        if (it->id == id) {
            ring_.erase(it);
            return true;
        }
    }
    return false;
}

}  // namespace popproto::service
