// Session model of the simulation service.
//
// A *session* is one simulated run owned by the daemon: a SessionSpec
// (what to run) plus the live lifecycle state the RunRegistry advances as
// workers execute bounded quanta of it.  The state machine (documented
// with transition edges in DESIGN.md "Service architecture"):
//
//             submit            scheduler           quantum expires
//   (new) --> kQueued  ------>  kRunning  --------> kQueued
//                ^                 |  \____ suspend ----> kSuspended
//                |                 |  \____ cancel -----> kCancelled
//                | resume          |  \____ error ------> kFailed
//                |                 \______ terminal ----> kDone
//             kSuspended --LRU evict--> kEvicted --resume--> kQueued
//
// kSuspended keeps the RunCheckpoint in memory; kEvicted has spilled it to
// the checkpoint store and holds only metadata.  Both resume bit-identically
// (same seed and boundaries => same RunResult as the uninterrupted run; the
// collapsed engine's super-step caveat is inherited from run_loop.h).

#ifndef POPPROTO_SERVICE_SESSION_H
#define POPPROTO_SERVICE_SESSION_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "core/tabulated_protocol.h"
#include "scenarios/scenario_spec.h"
#include "service/json.h"

namespace popproto::service {

/// What to simulate — the validated payload of a `submit` request, and the
/// part of a session that survives eviction and daemon restarts verbatim.
struct SessionSpec {
    /// One of "epidemic", "counting", "majority", "predicate".
    std::string protocol = "epidemic";

    /// Presburger predicate source (parser.h syntax) when protocol ==
    /// "predicate"; ignored otherwise.
    std::string predicate;

    /// Counting threshold when protocol == "counting" (the paper's
    /// count-to-five is threshold 5).
    std::uint32_t threshold = 5;

    /// Agents per input symbol (CountConfiguration::from_input_counts).
    std::vector<std::uint64_t> counts;

    /// "auto" | "agent" | "batch" | "collapsed" | "adaptive" (run_simulation
    /// dispatch; "adaptive" switches batch <-> collapsed mid-run).
    std::string engine = "auto";

    /// Pairing discipline: "uniform" (the classic scheduler, dispatched via
    /// run_simulation) or one of scenario_model_names() ("round_robin",
    /// "sweep", "adversarial", "dynamic_graph", "grid_mobility"), dispatched
    /// via run_scenario.  Non-uniform models require engine == "auto" and
    /// threads <= 1 (the pairing state is inherently sequential).
    std::string model = "uniform";

    /// adversarial: per-step look-ahead for null interactions.
    std::uint64_t probe = 16;

    /// dynamic_graph: named phase topologies ("complete", "ring", "line",
    /// "star"); required non-empty for that model.
    std::vector<std::string> phases;
    /// dynamic_graph: interactions per phase (0 resolves to 4n).
    std::uint64_t phase_length = 0;

    /// grid_mobility: torus dimensions (0 = auto-size) and Chebyshev
    /// contact radius.
    std::uint64_t torus_width = 0;
    std::uint64_t torus_height = 0;
    std::uint64_t radius = 1;

    /// Intra-run worker threads (collapsed engine only, like RunOptions).
    unsigned threads = 1;

    std::uint64_t seed = 1;

    /// Interaction budget; 0 selects default_budget(n).
    std::uint64_t budget = 0;

    /// Work-quantum length in interactions; 0 selects the registry default.
    /// Pause boundaries land on absolute multiples of this value, so a
    /// session's trajectory is independent of server load and of how often
    /// it was suspended/evicted in between.
    std::uint64_t quantum = 0;

    /// Scheduling weight: quanta granted per scheduler rotation (>= 1).
    std::uint64_t weight = 1;

    /// Snapshot period streamed to wire subscribers (0 = no snapshots).
    /// Snapshot indices are absolute, so the stream is independent of
    /// quantum boundaries.
    std::uint64_t snapshot_every = 0;

    /// When true, quanta run under a RunTelemetryCollector and the
    /// terminal "stop" event streamed to subscribers is preceded by the
    /// final quantum's "telemetry" event (jsonl_writer semantics).
    bool telemetry = false;

    /// Optional human-readable label echoed in status responses.
    std::string name;
};

/// Parses/serializes a spec for the wire protocol and spill manifests.
/// `parse_session_spec` validates types and ranges and throws
/// std::invalid_argument naming the offending field.
SessionSpec parse_session_spec(const JsonValue& object);
JsonValue session_spec_to_json(const SessionSpec& spec);

/// Instantiates the spec's protocol (throws std::invalid_argument for an
/// unknown name or an uncompilable predicate) and its initial
/// configuration.  Deterministic: the same spec always yields the same
/// protocol tables, which is what makes re-building after eviction safe.
std::unique_ptr<TabulatedProtocol> build_protocol(const SessionSpec& spec);
CountConfiguration build_initial(const TabulatedProtocol& protocol, const SessionSpec& spec);

/// Maps the spec's engine string onto RunOptions::engine; throws on an
/// unknown name.
SimulationEngine parse_engine_name(const std::string& name);

/// Projects the spec's scenario fields onto a run_scenario ScenarioSpec
/// (meaningful only when spec.model != "uniform").
ScenarioSpec scenario_spec_from(const SessionSpec& spec);

/// Session lifecycle states (see the file comment for the machine).
enum class SessionState {
    kQueued,     ///< waiting in the fair scheduler for its next quantum
    kRunning,    ///< a worker is executing a quantum right now
    kSuspended,  ///< suspended by request; checkpoint resident in memory
    kEvicted,    ///< suspended and spilled; checkpoint lives on disk
    kDone,       ///< terminal: converged or exhausted its budget
    kFailed,     ///< terminal: a quantum threw; `error` carries the message
    kCancelled,  ///< terminal: cancelled by request
};

const char* session_state_name(SessionState state);

/// Point-in-time public view of a session (the `status` response payload).
struct SessionStatus {
    std::string id;
    std::string name;
    SessionState state = SessionState::kQueued;
    std::uint64_t interactions = 0;
    std::uint64_t effective_interactions = 0;
    std::uint64_t quanta = 0;  ///< work quanta executed so far
    /// Terminal runs only: the final stop reason / consensus / convergence.
    std::optional<StopReason> stop_reason;
    std::optional<Symbol> consensus;
    std::uint64_t last_output_change = 0;
    std::string error;  ///< kFailed only
};

/// Serializes a status as the wire response payload.
JsonValue session_status_to_json(const SessionStatus& status);

}  // namespace popproto::service

#endif  // POPPROTO_SERVICE_SESSION_H
