// Daemon lifecycle: registry + server + graceful drain.
//
// `run_daemon` is the whole life of a serve_popproto process: restore any
// sessions the previous incarnation drained to the spill directory, start
// serving, and block until SIGTERM/SIGINT (or a wire "shutdown" command)
// asks it to stop — at which point the server stops accepting mutations,
// every in-flight quantum is interrupted at its next loop boundary, every
// non-terminal session is checkpointed to disk with a manifest, and the
// process exits 0.  A restarted daemon picks all of them up bit-identically
// (restore() + the checkpoint machinery of run_loop.h).

#ifndef POPPROTO_SERVICE_DAEMON_H
#define POPPROTO_SERVICE_DAEMON_H

#include "service/registry.h"
#include "service/server.h"

namespace popproto::service {

struct DaemonOptions {
    RegistryOptions registry;
    ServerOptions server;

    /// Print a "listening on ..." line (and drain progress) to stderr.
    bool verbose = true;
};

/// Runs until a termination signal or a wire "shutdown"; returns the
/// process exit code (0 after a clean drain).  Installs SIGTERM/SIGINT
/// handlers for the duration of the call.
int run_daemon(const DaemonOptions& options);

}  // namespace popproto::service

#endif  // POPPROTO_SERVICE_DAEMON_H
