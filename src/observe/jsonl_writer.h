// Streaming JSONL trace export.
//
// A JsonlTraceWriter serializes every observed event as one JSON object per
// line, suitable for `jq`, pandas, or any plotting pipeline (see the
// trace_run example and the schema table in DESIGN.md):
//
//   {"event":"start","engine":"count_batch","population":1000,...}
//   {"event":"snapshot","t":4096,"counts":[993,7,0,0,0,0]}
//   {"event":"output_change","t":531}
//   {"event":"stop","reason":"silent","interactions":88211,...}
//
// Writes are mutex-guarded so a writer shared across measure_trials workers
// emits whole lines (runs interleave, single lines never tear); pair it
// with per-run TraceRecorders when per-trial ordering matters.

#ifndef POPPROTO_OBSERVE_JSONL_WRITER_H
#define POPPROTO_OBSERVE_JSONL_WRITER_H

#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>

#include "core/observer.h"
#include "core/simulator.h"

namespace popproto {

class JsonlTraceWriter final : public RunObserver {
public:
    /// Writes to a borrowed stream (e.g. std::cout or an ostringstream);
    /// the stream must outlive the writer.
    explicit JsonlTraceWriter(std::ostream& out);

    /// Opens `path` for writing (truncating); throws std::invalid_argument
    /// naming the path on failure.
    explicit JsonlTraceWriter(const std::string& path);

    /// Delivers each serialized line to `callback` instead of a stream —
    /// the service daemon uses this to fan one session's trace out to its
    /// wire subscribers.  The callback runs under the writer's mutex (so
    /// lines arrive whole and in order) on whichever thread produced the
    /// event; it must not call back into this writer.
    explicit JsonlTraceWriter(std::function<void(const std::string&)> callback);

    /// When false (default true), snapshot and stop events omit the
    /// `counts` array — useful for long runs where only the event timing
    /// matters.
    void set_write_counts(bool write_counts) { write_counts_ = write_counts; }

    void on_start(const RunStartInfo& info) override;
    void on_snapshot(std::uint64_t interaction_index,
                     const CountConfiguration& configuration) override;
    void on_output_change(std::uint64_t interaction_index) override;

    /// Emits an "engine_switch" event (adaptive runs only): the interaction
    /// index of the splice, both engines, and the monitor signal that
    /// triggered it.
    void on_engine_switch(const EngineSwitchInfo& info) override;

    /// Emits the "stop" event, preceded by a "telemetry" event when the run
    /// carried a RunTelemetry (RunOptions::telemetry was set).
    void on_stop(const RunResult& result, double wall_seconds) override;

private:
    /// Writes one line and verifies the stream took it; a failed stream
    /// (disk full, closed pipe) throws std::runtime_error naming the path
    /// instead of silently truncating the trace.
    void write_line(const std::string& line);

    std::ofstream owned_;
    std::ostream* out_;  // nullptr for the callback constructor
    std::function<void(const std::string&)> callback_;
    std::string path_;  // empty for the borrowed-stream constructor
    std::mutex mutex_;
    bool write_counts_ = true;
};

}  // namespace popproto

#endif  // POPPROTO_OBSERVE_JSONL_WRITER_H
