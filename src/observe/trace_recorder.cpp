#include "observe/trace_recorder.h"

#include "core/require.h"

namespace popproto {

std::vector<TraceSnapshot> TraceRecorder::trajectory() const {
    require(started_ && result_.has_value(),
            "TraceRecorder::trajectory: requires a finished run");
    std::vector<TraceSnapshot> trajectory;
    trajectory.reserve(snapshots_.size() + 2);
    trajectory.push_back({0, initial_counts_});
    trajectory.insert(trajectory.end(), snapshots_.begin(), snapshots_.end());
    if (trajectory.back().interaction_index < result_->interactions)
        trajectory.push_back({result_->interactions, result_->final_configuration.counts()});
    return trajectory;
}

void TraceRecorder::clear() {
    *this = TraceRecorder();
}

void TraceRecorder::on_start(const RunStartInfo& info) {
    clear();
    started_ = true;
    engine_ = info.engine;
    population_ = info.population;
    seed_ = info.seed;
    if (info.initial != nullptr) initial_counts_ = info.initial->counts();
}

void TraceRecorder::on_snapshot(std::uint64_t interaction_index,
                                const CountConfiguration& configuration) {
    snapshots_.push_back({interaction_index, configuration.counts()});
}

void TraceRecorder::on_output_change(std::uint64_t interaction_index) {
    output_changes_.push_back(interaction_index);
}

void TraceRecorder::on_null_run(std::uint64_t length) {
    total_null_skips_ += length;
}

void TraceRecorder::on_silence_check(std::uint64_t, bool) {
    ++silence_checks_;
}

void TraceRecorder::on_stop(const RunResult& result, double wall_seconds) {
    result_ = result;
    wall_seconds_ = wall_seconds;
}

}  // namespace popproto
