// In-memory run-trace recording.
//
// A TraceRecorder attached to RunOptions::observer captures one run's
// trajectory as plain vectors: the initial counts, every scheduled
// state-count snapshot, the output-change indices, and the final result
// with wall-clock time.  It is the programmatic counterpart of
// JsonlTraceWriter — use it to regression-check trajectories (see
// tests/engine_parity_test.cpp) or to feed plots without touching disk.
//
// One recorder records one run at a time; reuse via clear().  It is NOT
// thread-safe — do not share a single recorder across measure_trials
// workers (use MetricsCollector for cross-run aggregates instead).

#ifndef POPPROTO_OBSERVE_TRACE_RECORDER_H
#define POPPROTO_OBSERVE_TRACE_RECORDER_H

#include <cstdint>
#include <optional>
#include <vector>

#include "core/observer.h"
#include "core/simulator.h"

namespace popproto {

/// One scheduled snapshot: the state-count vector after exactly
/// `interaction_index` interactions.
struct TraceSnapshot {
    std::uint64_t interaction_index = 0;
    std::vector<std::uint64_t> counts;
};

class TraceRecorder final : public RunObserver {
public:
    /// Discards everything recorded so far, readying the recorder for a
    /// fresh run.
    void clear();

    bool started() const { return started_; }
    bool finished() const { return result_.has_value(); }

    ObservedEngine engine() const { return engine_; }
    std::uint64_t population() const { return population_; }
    std::uint64_t seed() const { return seed_; }

    /// State counts of the initial configuration (snapshot index 0).
    const std::vector<std::uint64_t>& initial_counts() const { return initial_counts_; }

    /// Scheduled snapshots in increasing interaction-index order.
    const std::vector<TraceSnapshot>& snapshots() const { return snapshots_; }

    /// Indices of interactions that changed the output multiset (batch
    /// engine) or some agent's output (per-agent engines).
    const std::vector<std::uint64_t>& output_changes() const { return output_changes_; }

    /// Sum of all reported null-run lengths (batch engine only; equals
    /// interactions - effective_interactions of the recorded run).
    std::uint64_t total_null_skips() const { return total_null_skips_; }

    /// Number of silence-predicate evaluations reported by the engine.
    std::uint64_t silence_checks() const { return silence_checks_; }

    /// The run's final result; empty until on_stop.
    const std::optional<RunResult>& result() const { return result_; }

    double wall_seconds() const { return wall_seconds_; }

    /// The full recorded trajectory as one snapshot list: index 0 with the
    /// initial counts, every scheduled snapshot, and the run's stop index
    /// with the final configuration (omitted when it coincides with the
    /// last scheduled snapshot).  Requires a finished run.  This is the
    /// export consumed by the mean-field comparator
    /// (meanfield/comparator.h), which rescales the indices to fluid time
    /// t = i / n.
    std::vector<TraceSnapshot> trajectory() const;

    void on_start(const RunStartInfo& info) override;
    void on_snapshot(std::uint64_t interaction_index,
                     const CountConfiguration& configuration) override;
    void on_output_change(std::uint64_t interaction_index) override;
    void on_null_run(std::uint64_t length) override;
    void on_silence_check(std::uint64_t interaction_index, bool silent) override;
    void on_stop(const RunResult& result, double wall_seconds) override;

private:
    bool started_ = false;
    ObservedEngine engine_ = ObservedEngine::kAgentArray;
    std::uint64_t population_ = 0;
    std::uint64_t seed_ = 0;
    std::vector<std::uint64_t> initial_counts_;
    std::vector<TraceSnapshot> snapshots_;
    std::vector<std::uint64_t> output_changes_;
    std::uint64_t total_null_skips_ = 0;
    std::uint64_t silence_checks_ = 0;
    std::optional<RunResult> result_;
    double wall_seconds_ = 0.0;
};

}  // namespace popproto

#endif  // POPPROTO_OBSERVE_TRACE_RECORDER_H
