#include "observe/jsonl_writer.h"

#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/require.h"
#include "core/tabulated_protocol.h"
#include "telemetry/telemetry.h"

namespace popproto {

namespace {

/// JSON string escaping (quotes, backslashes, control characters).
void append_json_string(std::ostringstream& out, const std::string& text) {
    out << '"';
    for (const char c : text) {
        switch (c) {
            case '"':
                out << "\\\"";
                break;
            case '\\':
                out << "\\\\";
                break;
            case '\n':
                out << "\\n";
                break;
            case '\t':
                out << "\\t";
                break;
            case '\r':
                out << "\\r";
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    constexpr char kHex[] = "0123456789abcdef";
                    out << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
                } else {
                    out << c;
                }
        }
    }
    out << '"';
}

void append_counts(std::ostringstream& out, const std::vector<std::uint64_t>& counts) {
    out << "\"counts\":[";
    for (std::size_t q = 0; q < counts.size(); ++q) {
        if (q != 0) out << ',';
        out << counts[q];
    }
    out << ']';
}

/// The "telemetry" event line: phase timers, shard utilization, and the
/// engine-specific batch/skip aggregates of one finished run (schema in
/// DESIGN.md "Observability").
std::string telemetry_line(const telemetry::RunTelemetry& data) {
    std::ostringstream line;
    line << "{\"event\":\"telemetry\",\"schema_version\":"
         << telemetry::RunTelemetry::kSchemaVersion << ",\"engine\":\"" << data.engine
         << "\",\"population\":" << data.population << ",\"threads\":" << data.threads
         << ",\"wall_ns\":" << data.wall_ns << ",\"interactions\":" << data.interactions
         << ",\"effective_interactions\":" << data.effective_interactions << ",\"phases\":{";
    bool first = true;
    for (std::size_t p = 0; p < telemetry::kNumPhases; ++p) {
        const telemetry::PhaseStat& stat = data.phases[p];
        if (stat.calls == 0 && stat.total_ns == 0) continue;
        if (!first) line << ',';
        first = false;
        line << '"' << telemetry::phase_name(static_cast<telemetry::Phase>(p))
             << "\":{\"ns\":" << stat.total_ns << ",\"calls\":" << stat.calls
             << ",\"max_ns\":" << stat.max_ns << '}';
    }
    line << "},\"shards\":[";
    for (std::size_t k = 0; k < data.shards.size(); ++k) {
        if (k != 0) line << ',';
        line << "{\"tasks\":" << data.shards[k].tasks
             << ",\"busy_ns\":" << data.shards[k].busy_ns
             << ",\"wait_ns\":" << data.shards[k].wait_ns << '}';
    }
    line << ']';
    if (!data.engine_segments.empty()) {
        line << ",\"engine_switches\":" << data.engine_switches << ",\"engine_segments\":[";
        for (std::size_t k = 0; k < data.engine_segments.size(); ++k) {
            if (k != 0) line << ',';
            line << "{\"engine\":\"" << data.engine_segments[k].engine
                 << "\",\"interactions\":" << data.engine_segments[k].interactions
                 << ",\"wall_ns\":" << data.engine_segments[k].wall_ns << '}';
        }
        line << ']';
    }
    line << ",\"pool_rounds\":" << data.pool_rounds
         << ",\"inline_rounds\":" << data.inline_rounds
         << ",\"super_steps\":" << data.super_steps
         << ",\"clamped_super_steps\":" << data.clamped_super_steps
         << ",\"super_step_pairs\":" << data.super_step_pairs
         << ",\"geometric_skips\":" << data.geometric_skips
         << ",\"null_interactions_skipped\":" << data.null_interactions_skipped
         << ",\"spans\":" << data.spans.size()
         << ",\"spans_dropped\":" << data.spans_dropped << '}';
    return line.str();
}

const char* stop_reason_name(StopReason reason) {
    switch (reason) {
        case StopReason::kSilent:
            return "silent";
        case StopReason::kStableOutputs:
            return "stable_outputs";
        case StopReason::kBudget:
            return "budget";
        case StopReason::kPaused:
            return "paused";
    }
    return "unknown";
}

}  // namespace

JsonlTraceWriter::JsonlTraceWriter(std::ostream& out) : out_(&out) {}

JsonlTraceWriter::JsonlTraceWriter(const std::string& path)
    : owned_(path, std::ios::out | std::ios::trunc), out_(&owned_), path_(path) {
    require(owned_.is_open(), "JsonlTraceWriter: cannot open " + path);
}

JsonlTraceWriter::JsonlTraceWriter(std::function<void(const std::string&)> callback)
    : out_(nullptr), callback_(std::move(callback)) {
    require(static_cast<bool>(callback_), "JsonlTraceWriter: callback must be callable");
}

void JsonlTraceWriter::write_line(const std::string& line) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (out_ == nullptr) {
        callback_(line);
        return;
    }
    *out_ << line << '\n';
    // badbit/failbit after a write means the line was lost (disk full,
    // closed descriptor); surface it now rather than truncating silently.
    if (!*out_)
        throw std::runtime_error("JsonlTraceWriter: write failed" +
                                 (path_.empty() ? std::string() : " for " + path_));
}

void JsonlTraceWriter::on_start(const RunStartInfo& info) {
    std::ostringstream line;
    line << "{\"event\":\"start\",\"engine\":\"" << observed_engine_name(info.engine)
         << "\",\"population\":" << info.population << ",\"num_states\":" << info.num_states
         << ",\"seed\":" << info.seed << ",\"max_interactions\":" << info.max_interactions;
    if (info.initial != nullptr) {
        line << ',';
        append_counts(line, info.initial->counts());
    }
    if (info.protocol != nullptr) {
        line << ",\"state_names\":[";
        for (State q = 0; q < info.protocol->num_states(); ++q) {
            if (q != 0) line << ',';
            append_json_string(line, info.protocol->state_name(q));
        }
        line << ']';
    }
    line << '}';
    write_line(line.str());
}

void JsonlTraceWriter::on_snapshot(std::uint64_t interaction_index,
                                   const CountConfiguration& configuration) {
    std::ostringstream line;
    line << "{\"event\":\"snapshot\",\"t\":" << interaction_index;
    if (write_counts_) {
        line << ',';
        append_counts(line, configuration.counts());
    }
    line << '}';
    write_line(line.str());
}

void JsonlTraceWriter::on_output_change(std::uint64_t interaction_index) {
    std::ostringstream line;
    line << "{\"event\":\"output_change\",\"t\":" << interaction_index << '}';
    write_line(line.str());
}

void JsonlTraceWriter::on_engine_switch(const EngineSwitchInfo& info) {
    std::ostringstream line;
    line << "{\"event\":\"engine_switch\",\"t\":" << info.interactions << ",\"from\":\""
         << observed_engine_name(info.from) << "\",\"to\":\"" << observed_engine_name(info.to)
         << "\",\"signal\":" << info.signal << ",\"enter_threshold\":" << info.enter_threshold
         << ",\"exit_threshold\":" << info.exit_threshold
         << ",\"switch_index\":" << info.switch_index << '}';
    write_line(line.str());
}

void JsonlTraceWriter::on_stop(const RunResult& result, double wall_seconds) {
    if (result.telemetry != nullptr && result.telemetry->enabled)
        write_line(telemetry_line(*result.telemetry));
    std::ostringstream line;
    line << "{\"event\":\"stop\",\"reason\":\"" << stop_reason_name(result.stop_reason)
         << "\",\"interactions\":" << result.interactions
         << ",\"effective_interactions\":" << result.effective_interactions
         << ",\"last_output_change\":" << result.last_output_change << ",\"consensus\":";
    if (result.consensus) {
        line << *result.consensus;
    } else {
        line << "null";
    }
    line << ",\"wall_seconds\":" << wall_seconds;
    if (write_counts_) {
        line << ',';
        append_counts(line, result.final_configuration.counts());
    }
    line << '}';
    write_line(line.str());
    const std::lock_guard<std::mutex> lock(mutex_);
    if (out_ != nullptr) out_->flush();
}

}  // namespace popproto
