// Cross-run metric aggregation.
//
// A MetricsCollector accumulates counters and histograms over every run it
// observes: total vs effective interactions, per-stop-reason counts,
// null-skip run lengths (log2 histogram), silence-check counts, and
// wall-clock per run.  It is thread-safe — one collector can be attached to
// TrialOptions::base.observer and fed concurrently by every measure_trials
// worker — and is the natural hook for exporting serving-style metrics from
// long-running experiment sweeps.

#ifndef POPPROTO_OBSERVE_METRICS_H
#define POPPROTO_OBSERVE_METRICS_H

#include <array>
#include <cstdint>
#include <mutex>
#include <string>

#include "core/observer.h"
#include "core/simulator.h"

namespace popproto {

/// A consistent snapshot of everything a MetricsCollector has aggregated.
struct MetricsReport {
    /// Schema version of to_json (bumped on breaking shape changes; the
    /// full schema is documented in DESIGN.md "Observability").
    static constexpr int kSchemaVersion = 1;

    std::uint64_t runs_started = 0;
    std::uint64_t runs_finished = 0;

    // Summed over finished runs.
    std::uint64_t interactions = 0;
    std::uint64_t effective_interactions = 0;

    // Stop reasons of finished runs (silent + stable_outputs + budget +
    // paused == runs_finished).  A paused run (service work quantum,
    // cooperative stop) is counted as finished here — each resumed segment
    // is its own observed run.
    std::uint64_t stops_silent = 0;
    std::uint64_t stops_stable_outputs = 0;
    std::uint64_t stops_budget = 0;
    std::uint64_t stops_paused = 0;

    // Event counts.
    std::uint64_t output_changes = 0;
    std::uint64_t snapshots = 0;
    std::uint64_t silence_checks = 0;

    // Null-run statistics (batch engine).  Bucket b of the histogram counts
    // runs of length in [2^b, 2^(b+1)); `null_interactions_skipped` equals
    // interactions - effective_interactions over batch runs.
    std::uint64_t null_runs = 0;
    std::uint64_t null_interactions_skipped = 0;
    std::array<std::uint64_t, 64> null_run_length_log2{};

    // Wall-clock seconds of finished runs.
    double wall_seconds_total = 0.0;
    double wall_seconds_min = 0.0;
    double wall_seconds_max = 0.0;

    /// Multi-line human-readable dump (histogram buckets with zero counts
    /// are omitted).
    std::string to_string() const;

    /// Single-line JSON object with every counter plus the non-zero log2
    /// histogram buckets (keyed by bucket exponent), so cross-run
    /// aggregates can land next to JSONL traces without hand-rolled
    /// printing:
    /// {"schema_version":1,"runs_started":...,"null_run_length_log2":{"4":17,...}}.
    std::string to_json() const;
};

class MetricsCollector final : public RunObserver {
public:
    /// Thread-safe consistent copy of the aggregates.
    MetricsReport report() const;

    /// Zeroes every counter.
    void reset();

    void on_start(const RunStartInfo& info) override;
    void on_snapshot(std::uint64_t interaction_index,
                     const CountConfiguration& configuration) override;
    void on_output_change(std::uint64_t interaction_index) override;
    void on_null_run(std::uint64_t length) override;
    void on_silence_check(std::uint64_t interaction_index, bool silent) override;
    void on_stop(const RunResult& result, double wall_seconds) override;

private:
    mutable std::mutex mutex_;
    MetricsReport data_;
};

}  // namespace popproto

#endif  // POPPROTO_OBSERVE_METRICS_H
