#include "observe/metrics.h"

#include <bit>
#include <sstream>

namespace popproto {

std::string MetricsReport::to_string() const {
    std::ostringstream out;
    out << "runs: " << runs_finished << " finished / " << runs_started << " started"
        << " (silent " << stops_silent << ", stable_outputs " << stops_stable_outputs
        << ", budget " << stops_budget << ", paused " << stops_paused << ")\n";
    out << "interactions: " << interactions << " total, " << effective_interactions
        << " effective, " << null_interactions_skipped << " skipped in " << null_runs
        << " null runs\n";
    out << "events: " << snapshots << " snapshots, " << output_changes << " output changes, "
        << silence_checks << " silence checks\n";
    out << "wall seconds: " << wall_seconds_total << " total";
    if (runs_finished > 0)
        out << " (min " << wall_seconds_min << ", max " << wall_seconds_max << ")";
    out << "\n";
    if (null_runs > 0) {
        out << "null-run lengths (log2 buckets):\n";
        for (std::size_t b = 0; b < null_run_length_log2.size(); ++b) {
            if (null_run_length_log2[b] == 0) continue;
            out << "  [2^" << b << ", 2^" << b + 1 << "): " << null_run_length_log2[b] << "\n";
        }
    }
    return out.str();
}

std::string MetricsReport::to_json() const {
    std::ostringstream out;
    out << "{\"schema_version\":" << kSchemaVersion << ",\"runs_started\":" << runs_started
        << ",\"runs_finished\":" << runs_finished
        << ",\"interactions\":" << interactions
        << ",\"effective_interactions\":" << effective_interactions
        << ",\"stops_silent\":" << stops_silent
        << ",\"stops_stable_outputs\":" << stops_stable_outputs
        << ",\"stops_budget\":" << stops_budget << ",\"stops_paused\":" << stops_paused
        << ",\"output_changes\":" << output_changes
        << ",\"snapshots\":" << snapshots << ",\"silence_checks\":" << silence_checks
        << ",\"null_runs\":" << null_runs
        << ",\"null_interactions_skipped\":" << null_interactions_skipped
        << ",\"null_run_length_log2\":{";
    bool first = true;
    for (std::size_t b = 0; b < null_run_length_log2.size(); ++b) {
        if (null_run_length_log2[b] == 0) continue;
        if (!first) out << ',';
        first = false;
        out << '"' << b << "\":" << null_run_length_log2[b];
    }
    out << "},\"wall_seconds_total\":" << wall_seconds_total
        << ",\"wall_seconds_min\":" << wall_seconds_min
        << ",\"wall_seconds_max\":" << wall_seconds_max << '}';
    return out.str();
}

MetricsReport MetricsCollector::report() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return data_;
}

void MetricsCollector::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    data_ = MetricsReport();
}

void MetricsCollector::on_start(const RunStartInfo&) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++data_.runs_started;
}

void MetricsCollector::on_snapshot(std::uint64_t, const CountConfiguration&) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++data_.snapshots;
}

void MetricsCollector::on_output_change(std::uint64_t) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++data_.output_changes;
}

void MetricsCollector::on_null_run(std::uint64_t length) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++data_.null_runs;
    data_.null_interactions_skipped += length;
    // length >= 1; bucket = floor(log2(length)).
    const int bucket = std::bit_width(length) - 1;
    ++data_.null_run_length_log2[static_cast<std::size_t>(bucket)];
}

void MetricsCollector::on_silence_check(std::uint64_t, bool) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++data_.silence_checks;
}

void MetricsCollector::on_stop(const RunResult& result, double wall_seconds) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (data_.runs_finished == 0 || wall_seconds < data_.wall_seconds_min)
        data_.wall_seconds_min = wall_seconds;
    if (data_.runs_finished == 0 || wall_seconds > data_.wall_seconds_max)
        data_.wall_seconds_max = wall_seconds;
    ++data_.runs_finished;
    data_.interactions += result.interactions;
    data_.effective_interactions += result.effective_interactions;
    data_.wall_seconds_total += wall_seconds;
    switch (result.stop_reason) {
        case StopReason::kSilent:
            ++data_.stops_silent;
            break;
        case StopReason::kStableOutputs:
            ++data_.stops_stable_outputs;
            break;
        case StopReason::kBudget:
            ++data_.stops_budget;
            break;
        case StopReason::kPaused:
            ++data_.stops_paused;
            break;
    }
}

}  // namespace popproto
