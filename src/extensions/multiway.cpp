#include "extensions/multiway.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "core/require.h"

namespace popproto {

MultiwayRunResult simulate_multiway(const MultiwayProtocol& protocol,
                                    const CountConfiguration& initial,
                                    const MultiwayRunOptions& options) {
    const std::size_t g = protocol.group_size();
    require(g >= 2, "simulate_multiway: group size must be at least 2");
    require(initial.num_states() == protocol.num_states(),
            "simulate_multiway: configuration does not match protocol");
    const std::uint64_t n = initial.population_size();
    require(n >= g, "simulate_multiway: population smaller than one group");
    require(options.max_interactions > 0, "simulate_multiway: max_interactions must be positive");

    Rng rng(options.seed);
    AgentConfiguration agents = AgentConfiguration::from_counts(initial);
    std::vector<State> states = agents.states();

    MultiwayRunResult result{CountConfiguration(protocol.num_states()), 0, 0, 0, std::nullopt};
    std::vector<std::size_t> members(g);
    std::vector<State> group(g);

    while (result.interactions < options.max_interactions) {
        // Sample g distinct agents by rejection (g << n in practice).
        for (std::size_t slot = 0; slot < g; ++slot) {
            for (;;) {
                const std::size_t candidate = rng.below(n);
                bool duplicate = false;
                for (std::size_t other = 0; other < slot; ++other)
                    if (members[other] == candidate) duplicate = true;
                if (!duplicate) {
                    members[slot] = candidate;
                    break;
                }
            }
        }
        ++result.interactions;

        for (std::size_t slot = 0; slot < g; ++slot) group[slot] = states[members[slot]];
        std::vector<State> next = group;
        protocol.apply(next);
        ensure(next.size() == g, "simulate_multiway: delta changed the group size");

        bool changed = false;
        bool output_changed = false;
        for (std::size_t slot = 0; slot < g; ++slot) {
            if (next[slot] != group[slot]) {
                changed = true;
                if (protocol.output(next[slot]) != protocol.output(group[slot]))
                    output_changed = true;
                states[members[slot]] = next[slot];
            }
        }
        if (changed) ++result.effective_interactions;
        if (output_changed) result.last_output_change = result.interactions;

        if (options.stop_after_stable_outputs != 0 && result.last_output_change != 0 &&
            result.interactions - result.last_output_change >=
                options.stop_after_stable_outputs) {
            break;
        }
    }

    CountConfiguration final_config(protocol.num_states());
    for (State q : states) final_config.add(q);
    // Consensus by hand (CountConfiguration::consensus_output expects a
    // pairwise Protocol).
    std::optional<Symbol> consensus;
    bool uniform = true;
    for (State q = 0; q < final_config.num_states() && uniform; ++q) {
        if (final_config.count(q) == 0) continue;
        const Symbol y = protocol.output(q);
        if (!consensus) {
            consensus = y;
        } else if (*consensus != y) {
            uniform = false;
        }
    }
    result.consensus = uniform ? consensus : std::nullopt;
    result.final_configuration = std::move(final_config);
    return result;
}

namespace {

/// Enumerates all multisets of size g over the present states and invokes
/// `visit` with each (as a vector of states, non-decreasing).
void for_each_group(const std::vector<State>& present, std::size_t g,
                    std::vector<State>& group,
                    const std::function<void(const std::vector<State>&)>& visit,
                    std::size_t from = 0) {
    if (group.size() == g) {
        visit(group);
        return;
    }
    for (std::size_t i = from; i < present.size(); ++i) {
        group.push_back(present[i]);
        for_each_group(present, g, group, visit, i);
        group.pop_back();
    }
}

/// True iff `config` supplies the multiset `group` (counts available).
bool group_available(const CountConfiguration& config, const std::vector<State>& group) {
    std::uint64_t needed = 1;
    for (std::size_t i = 1; i <= group.size(); ++i) {
        if (i < group.size() && group[i] == group[i - 1]) {
            ++needed;
        } else {
            if (config.count(group[i - 1]) < needed) return false;
            needed = 1;
        }
    }
    return true;
}

}  // namespace

StableComputationResult analyze_multiway_stable_computation(const MultiwayProtocol& protocol,
                                                            const CountConfiguration& initial,
                                                            std::size_t max_configs) {
    const std::size_t g = protocol.group_size();
    require(initial.num_states() == protocol.num_states(),
            "analyze_multiway_stable_computation: configuration mismatch");
    require(initial.population_size() >= g,
            "analyze_multiway_stable_computation: population smaller than one group");

    std::vector<CountConfiguration> configs;
    std::vector<std::vector<ConfigId>> successors;
    std::unordered_map<CountConfiguration, ConfigId, CountConfigurationHash> index;

    const auto intern = [&](const CountConfiguration& config) -> ConfigId {
        auto it = index.find(config);
        if (it != index.end()) return it->second;
        const auto id = static_cast<ConfigId>(configs.size());
        index.emplace(config, id);
        configs.push_back(config);
        successors.emplace_back();
        return id;
    };

    intern(initial);
    std::deque<ConfigId> frontier{0};
    while (!frontier.empty()) {
        const ConfigId current = frontier.front();
        frontier.pop_front();
        const CountConfiguration config = configs[current];  // copy: vector may move

        std::vector<State> present;
        for (State q = 0; q < config.num_states(); ++q)
            if (config.count(q) > 0) present.push_back(q);

        std::vector<ConfigId> out_edges;
        std::vector<State> group;
        // Every ordered arrangement of each multiset; delta may be
        // order-sensitive, so apply it to all distinct permutations.
        for_each_group(present, g, group, [&](const std::vector<State>& multiset) {
            if (!group_available(config, multiset)) return;
            std::vector<State> arrangement = multiset;
            std::sort(arrangement.begin(), arrangement.end());
            do {
                std::vector<State> next = arrangement;
                protocol.apply(next);
                CountConfiguration successor = config;
                for (State q : arrangement) successor.remove(q);
                for (State q : next) successor.add(q);
                if (successor == config) continue;
                const bool is_new = index.find(successor) == index.end();
                const ConfigId succ_id = intern(successor);
                out_edges.push_back(succ_id);
                if (is_new) {
                    if (configs.size() > max_configs)
                        throw std::runtime_error(
                            "analyze_multiway_stable_computation: too many configurations");
                    frontier.push_back(succ_id);
                }
            } while (std::next_permutation(arrangement.begin(), arrangement.end()));
        });
        std::sort(out_edges.begin(), out_edges.end());
        out_edges.erase(std::unique(out_edges.begin(), out_edges.end()), out_edges.end());
        successors[current] = std::move(out_edges);
    }

    std::vector<OutputSignature> signatures;
    signatures.reserve(configs.size());
    for (const CountConfiguration& config : configs) {
        OutputSignature signature(protocol.num_output_symbols(), 0);
        for (State q = 0; q < config.num_states(); ++q)
            signature[protocol.output(q)] += config.count(q);
        signatures.push_back(std::move(signature));
    }
    return summarize_stable_computation(successors, signatures);
}

namespace {

/// Strict-majority canceller.  States: 0 = A, 1 = B, 2 = Ta (undecided,
/// leaning A), 3 = Tb.  Groups holding both camps cancel one A against one
/// B; groups holding survivors of only one camp convert every undecided
/// member to that camp's lean.
class MultiwayMajority final : public MultiwayProtocol {
public:
    explicit MultiwayMajority(std::size_t group_size) : group_size_(group_size) {
        require(group_size >= 2, "make_multiway_majority_protocol: group size >= 2");
    }

    std::size_t group_size() const override { return group_size_; }
    std::size_t num_states() const override { return 4; }
    std::size_t num_input_symbols() const override { return 2; }
    std::size_t num_output_symbols() const override { return 2; }
    State initial_state(Symbol x) const override {
        require(x < 2, "MultiwayMajority: input out of range");
        return x;  // 0 -> A, 1 -> B
    }
    Symbol output(State q) const override {
        require(q < 4, "MultiwayMajority: state out of range");
        return (q == 1 || q == 3) ? kOutputTrue : kOutputFalse;  // B side says true
    }

    void apply(std::vector<State>& group) const override {
        std::size_t camp_a = 0;
        std::size_t camp_b = 0;
        for (State q : group) {
            if (q == 0) ++camp_a;
            if (q == 1) ++camp_b;
        }
        if (camp_a >= 1 && camp_b >= 1) {
            bool cancelled_a = false;
            bool cancelled_b = false;
            for (State& q : group) {
                if (!cancelled_a && q == 0) {
                    q = 2;  // -> Ta
                    cancelled_a = true;
                } else if (!cancelled_b && q == 1) {
                    q = 3;  // -> Tb
                    cancelled_b = true;
                }
            }
        } else if (camp_a >= 1) {
            for (State& q : group)
                if (q == 2 || q == 3) q = 2;
        } else if (camp_b >= 1) {
            for (State& q : group)
                if (q == 2 || q == 3) q = 3;
        }
    }

private:
    std::size_t group_size_;
};

/// Coincidence detector.  States: 0 = idle, 1 = marked, 2 = alert.
class MultiwayCoincidence final : public MultiwayProtocol {
public:
    explicit MultiwayCoincidence(std::size_t group_size) : group_size_(group_size) {
        require(group_size >= 2, "make_multiway_coincidence_protocol: group size >= 2");
    }

    std::size_t group_size() const override { return group_size_; }
    std::size_t num_states() const override { return 3; }
    std::size_t num_input_symbols() const override { return 2; }
    std::size_t num_output_symbols() const override { return 2; }
    State initial_state(Symbol x) const override {
        require(x < 2, "MultiwayCoincidence: input out of range");
        return x;
    }
    Symbol output(State q) const override {
        require(q < 3, "MultiwayCoincidence: state out of range");
        return q == 2 ? kOutputTrue : kOutputFalse;
    }

    void apply(std::vector<State>& group) const override {
        const bool any_alert =
            std::any_of(group.begin(), group.end(), [](State q) { return q == 2; });
        const bool all_marked =
            std::all_of(group.begin(), group.end(), [](State q) { return q == 1; });
        if (any_alert || all_marked)
            for (State& q : group) q = 2;
    }

private:
    std::size_t group_size_;
};

}  // namespace

std::unique_ptr<MultiwayProtocol> make_multiway_majority_protocol(std::size_t group_size) {
    return std::make_unique<MultiwayMajority>(group_size);
}

std::unique_ptr<MultiwayProtocol> make_multiway_coincidence_protocol(std::size_t group_size) {
    return std::make_unique<MultiwayCoincidence>(group_size);
}

}  // namespace popproto
