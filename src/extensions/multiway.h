// Multiway interactions (a Sect. 8 open direction).
//
// "The interaction rules we consider are deterministic and specify pairwise
// interactions.  What happens if the rules ... specify interactions of
// larger groups ...?"  This extension generalizes delta to ordered groups of
// a fixed size g: delta : Q^g -> Q^g.  It provides a uniform random
// simulator (g distinct agents per step) and an exact stable-computation
// analyzer over multiset configurations, mirroring the pairwise machinery.
//
// Demo protocols: a g-way strict-majority canceller (groups containing both
// camps cancel one pair; survivors re-convert undecided agents) and a g-way
// coincidence detector (g marked agents meeting at once raise a permanent
// alert).

#ifndef POPPROTO_EXTENSIONS_MULTIWAY_H
#define POPPROTO_EXTENSIONS_MULTIWAY_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/stable_computation.h"
#include "core/configuration.h"
#include "core/protocol.h"
#include "core/rng.h"

namespace popproto {

/// A protocol whose interactions involve `group_size` ordered agents.
class MultiwayProtocol {
public:
    MultiwayProtocol() = default;
    virtual ~MultiwayProtocol() = default;
    MultiwayProtocol(const MultiwayProtocol&) = delete;
    MultiwayProtocol& operator=(const MultiwayProtocol&) = delete;

    virtual std::size_t group_size() const = 0;
    virtual std::size_t num_states() const = 0;
    virtual std::size_t num_input_symbols() const = 0;
    virtual std::size_t num_output_symbols() const = 0;
    virtual State initial_state(Symbol x) const = 0;
    virtual Symbol output(State q) const = 0;

    /// Applies delta in place; `group.size() == group_size()`.
    virtual void apply(std::vector<State>& group) const = 0;
};

/// Outcome of a randomized multiway run.
struct MultiwayRunResult {
    CountConfiguration final_configuration;
    std::uint64_t interactions = 0;
    std::uint64_t effective_interactions = 0;
    std::uint64_t last_output_change = 0;
    std::optional<Symbol> consensus;
};

/// Options for simulate_multiway.
struct MultiwayRunOptions {
    std::uint64_t max_interactions = 0;
    /// Stop once outputs were stable this long (0 = run to the budget).
    std::uint64_t stop_after_stable_outputs = 0;
    std::uint64_t seed = 1;
};

/// Uniform random scheduling: each step selects an ordered group of
/// group_size() distinct agents.  Population must have at least group_size()
/// agents.
MultiwayRunResult simulate_multiway(const MultiwayProtocol& protocol,
                                    const CountConfiguration& initial,
                                    const MultiwayRunOptions& options);

/// Exact analyzer: explores all configurations reachable by group moves and
/// applies the Lemma 1 verdict (shared with the pairwise analyzer).
StableComputationResult analyze_multiway_stable_computation(
    const MultiwayProtocol& protocol, const CountConfiguration& initial,
    std::size_t max_configs = 1u << 20);

/// Strict-majority canceller with groups of size `group_size` (>= 2):
/// input symbols {0 = camp A, 1 = camp B}; output true iff camp B is the
/// strict majority.  Ties do not converge (documented limitation, as for
/// classic approximate-majority protocols); tests exclude them.
std::unique_ptr<MultiwayProtocol> make_multiway_majority_protocol(std::size_t group_size);

/// Coincidence detector: inputs {0 = idle, 1 = marked}; a group whose
/// members are all marked raises a permanent alert that then spreads through
/// any group.  Stably computes "at least group_size marked agents" with
/// O(1) states for any g (a pairwise protocol needs g + 1 states), a small
/// expressiveness dividend of larger groups.
std::unique_ptr<MultiwayProtocol> make_multiway_coincidence_protocol(std::size_t group_size);

}  // namespace popproto

#endif  // POPPROTO_EXTENSIONS_MULTIWAY_H
