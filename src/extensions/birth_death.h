// Population-changing interactions (the other Sect. 8 model question).
//
// "What happens if the rules ... allow the interaction to increase or
// decrease the population?"  This extension lets a pairwise rule map the
// ordered pair (p, q) to *any* bounded multiset of successor states: zero
// agents (mutual annihilation), one (merger), two (ordinary), or more
// (spawning).  It provides a uniform random simulator and an exact
// stable-computation analyzer over multiset configurations, both mirroring
// the fixed-population machinery.
//
// Demo protocols:
//   * annihilating majority: opposite camps destroy each other pairwise;
//     the survivors are the majority camp (and the protocol detects ties
//     exactly when the population dies out, something a fixed-population
//     protocol cannot express this way);
//   * a spawning counter: each seed agent buds `factor` worker agents, a
//     population-level unary multiplication.

#ifndef POPPROTO_EXTENSIONS_BIRTH_DEATH_H
#define POPPROTO_EXTENSIONS_BIRTH_DEATH_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/stable_computation.h"
#include "core/configuration.h"
#include "core/protocol.h"
#include "core/rng.h"

namespace popproto {

/// A pairwise protocol whose interactions may change the population size.
class BirthDeathProtocol {
public:
    BirthDeathProtocol() = default;
    virtual ~BirthDeathProtocol() = default;
    BirthDeathProtocol(const BirthDeathProtocol&) = delete;
    BirthDeathProtocol& operator=(const BirthDeathProtocol&) = delete;

    virtual std::size_t num_states() const = 0;
    virtual std::size_t num_input_symbols() const = 0;
    virtual std::size_t num_output_symbols() const = 0;
    virtual State initial_state(Symbol x) const = 0;
    virtual Symbol output(State q) const = 0;

    /// Successor multiset of the ordered pair (initiator, responder); any
    /// size from 0 (both die) up to max_offspring() is allowed.
    virtual std::vector<State> apply(State initiator, State responder) const = 0;

    /// Upper bound on the size of apply() results (for validation).
    virtual std::size_t max_offspring() const { return 4; }
};

struct BirthDeathRunResult {
    CountConfiguration final_configuration;
    std::uint64_t interactions = 0;
    std::uint64_t effective_interactions = 0;
    std::uint64_t last_output_change = 0;
    std::uint64_t births = 0;
    std::uint64_t deaths = 0;
    /// True if the run ended because fewer than two agents remain.
    bool extinct = false;
    std::optional<Symbol> consensus;
};

struct BirthDeathRunOptions {
    std::uint64_t max_interactions = 0;
    std::uint64_t stop_after_stable_outputs = 0;
    /// Hard cap on the population (throws std::runtime_error if exceeded,
    /// to catch runaway spawners).
    std::uint64_t max_population = 1u << 20;
    std::uint64_t seed = 1;
};

/// Uniform random pairing over the *current* population.  Stops when the
/// population drops below two (extinct = true), outputs stabilize, or the
/// budget runs out.
BirthDeathRunResult simulate_birth_death(const BirthDeathProtocol& protocol,
                                         const CountConfiguration& initial,
                                         const BirthDeathRunOptions& options);

/// Exact analyzer over multiset configurations (population varies across
/// configurations).  Configurations with fewer than two agents are terminal.
StableComputationResult analyze_birth_death_stable_computation(
    const BirthDeathProtocol& protocol, const CountConfiguration& initial,
    std::size_t max_configs = 1u << 20, std::uint64_t max_population = 4096);

/// Annihilating majority: inputs {0 = camp A, 1 = camp B}; opposite camps
/// annihilate pairwise (both agents die).  Stably: only the majority camp
/// survives; a tie annihilates everyone (extinction = exact tie detection).
std::unique_ptr<BirthDeathProtocol> make_annihilating_majority_protocol();

/// Spawning counter: inputs {0 = worker, 1 = seed(factor)}; a seed meeting a
/// worker buds one worker per encounter until its budget is spent, i.e. the
/// final worker count is initial_workers + factor * seeds.
std::unique_ptr<BirthDeathProtocol> make_spawning_counter_protocol(std::uint32_t factor);

}  // namespace popproto

#endif  // POPPROTO_EXTENSIONS_BIRTH_DEATH_H
