#include "extensions/birth_death.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "core/require.h"

namespace popproto {

BirthDeathRunResult simulate_birth_death(const BirthDeathProtocol& protocol,
                                         const CountConfiguration& initial,
                                         const BirthDeathRunOptions& options) {
    require(initial.num_states() == protocol.num_states(),
            "simulate_birth_death: configuration does not match protocol");
    require(options.max_interactions > 0,
            "simulate_birth_death: max_interactions must be positive");

    Rng rng(options.seed);
    std::vector<State> states;
    states.reserve(initial.population_size());
    for (State q = 0; q < initial.num_states(); ++q)
        states.insert(states.end(), initial.count(q), q);

    BirthDeathRunResult result{CountConfiguration(protocol.num_states()), 0, 0, 0, 0, 0,
                               false, std::nullopt};

    while (result.interactions < options.max_interactions) {
        if (states.size() < 2) {
            result.extinct = true;
            break;
        }
        const std::size_t i = rng.below(states.size());
        std::size_t j = rng.below(states.size() - 1);
        if (j >= i) ++j;
        ++result.interactions;

        const State p = states[i];
        const State q = states[j];
        const std::vector<State> offspring = protocol.apply(p, q);
        ensure(offspring.size() <= protocol.max_offspring(),
               "simulate_birth_death: apply exceeded max_offspring");
        for (State s : offspring)
            ensure(s < protocol.num_states(), "simulate_birth_death: offspring state invalid");

        // Null interaction (same multiset) fast path.
        const bool unchanged =
            offspring.size() == 2 &&
            ((offspring[0] == p && offspring[1] == q) ||
             (offspring[0] == q && offspring[1] == p));
        if (unchanged) continue;

        ++result.effective_interactions;
        if (offspring.size() > 2) result.births += offspring.size() - 2;
        if (offspring.size() < 2) result.deaths += 2 - offspring.size();

        // Output-multiset change detection.
        std::vector<std::int64_t> deltas(protocol.num_output_symbols(), 0);
        --deltas[protocol.output(p)];
        --deltas[protocol.output(q)];
        for (State s : offspring) ++deltas[protocol.output(s)];
        if (std::any_of(deltas.begin(), deltas.end(), [](std::int64_t d) { return d != 0; }))
            result.last_output_change = result.interactions;

        // Remove the pair (largest index first so the swap does not move the
        // other member), then append offspring.
        const std::size_t high = std::max(i, j);
        const std::size_t low = std::min(i, j);
        states[high] = states.back();
        states.pop_back();
        states[low] = states.back();
        states.pop_back();
        states.insert(states.end(), offspring.begin(), offspring.end());
        if (states.size() > options.max_population)
            throw std::runtime_error("simulate_birth_death: population exploded");

        if (options.stop_after_stable_outputs != 0 && result.last_output_change != 0 &&
            result.interactions - result.last_output_change >=
                options.stop_after_stable_outputs) {
            break;
        }
    }
    if (states.size() < 2) result.extinct = true;

    CountConfiguration final_config(protocol.num_states());
    for (State q : states) final_config.add(q);
    std::optional<Symbol> consensus;
    bool uniform = !states.empty();
    for (State q = 0; q < final_config.num_states() && uniform; ++q) {
        if (final_config.count(q) == 0) continue;
        const Symbol y = protocol.output(q);
        if (!consensus) {
            consensus = y;
        } else if (*consensus != y) {
            uniform = false;
        }
    }
    result.consensus = uniform ? consensus : std::nullopt;
    result.final_configuration = std::move(final_config);
    return result;
}

StableComputationResult analyze_birth_death_stable_computation(
    const BirthDeathProtocol& protocol, const CountConfiguration& initial,
    std::size_t max_configs, std::uint64_t max_population) {
    require(initial.num_states() == protocol.num_states(),
            "analyze_birth_death_stable_computation: configuration mismatch");

    std::vector<CountConfiguration> configs;
    std::vector<std::vector<ConfigId>> successors;
    std::unordered_map<CountConfiguration, ConfigId, CountConfigurationHash> index;

    const auto intern = [&](const CountConfiguration& config) -> ConfigId {
        auto it = index.find(config);
        if (it != index.end()) return it->second;
        const auto id = static_cast<ConfigId>(configs.size());
        index.emplace(config, id);
        configs.push_back(config);
        successors.emplace_back();
        return id;
    };

    intern(initial);
    std::deque<ConfigId> frontier{0};
    while (!frontier.empty()) {
        const ConfigId current = frontier.front();
        frontier.pop_front();
        const CountConfiguration config = configs[current];  // copy: vector may move
        if (config.population_size() < 2) continue;          // terminal

        std::vector<State> present;
        for (State q = 0; q < config.num_states(); ++q)
            if (config.count(q) > 0) present.push_back(q);

        std::vector<ConfigId> out_edges;
        for (State p : present) {
            for (State q : present) {
                if (p == q && config.count(p) < 2) continue;
                const std::vector<State> offspring = protocol.apply(p, q);
                CountConfiguration successor = config;
                successor.remove(p);
                successor.remove(q);
                for (State s : offspring) successor.add(s);
                if (successor == config) continue;
                if (successor.population_size() > max_population)
                    throw std::runtime_error(
                        "analyze_birth_death_stable_computation: population exploded");
                const bool is_new = index.find(successor) == index.end();
                const ConfigId succ_id = intern(successor);
                out_edges.push_back(succ_id);
                if (is_new) {
                    if (configs.size() > max_configs)
                        throw std::runtime_error(
                            "analyze_birth_death_stable_computation: too many configurations");
                    frontier.push_back(succ_id);
                }
            }
        }
        std::sort(out_edges.begin(), out_edges.end());
        out_edges.erase(std::unique(out_edges.begin(), out_edges.end()), out_edges.end());
        successors[current] = std::move(out_edges);
    }

    std::vector<OutputSignature> signatures;
    signatures.reserve(configs.size());
    for (const CountConfiguration& config : configs) {
        OutputSignature signature(protocol.num_output_symbols(), 0);
        for (State q = 0; q < config.num_states(); ++q)
            signature[protocol.output(q)] += config.count(q);
        signatures.push_back(std::move(signature));
    }
    return summarize_stable_computation(successors, signatures);
}

namespace {

class AnnihilatingMajority final : public BirthDeathProtocol {
public:
    std::size_t num_states() const override { return 2; }
    std::size_t num_input_symbols() const override { return 2; }
    std::size_t num_output_symbols() const override { return 2; }
    State initial_state(Symbol x) const override {
        require(x < 2, "AnnihilatingMajority: input out of range");
        return x;
    }
    Symbol output(State q) const override {
        require(q < 2, "AnnihilatingMajority: state out of range");
        return q == 1 ? kOutputTrue : kOutputFalse;
    }
    std::vector<State> apply(State initiator, State responder) const override {
        if (initiator != responder) return {};  // opposite camps annihilate
        return {initiator, responder};
    }
};

/// States: 0 = worker; k in [1, factor] = seed with k buds remaining.
class SpawningCounter final : public BirthDeathProtocol {
public:
    explicit SpawningCounter(std::uint32_t factor) : factor_(factor) {
        require(factor >= 1, "make_spawning_counter_protocol: factor must be positive");
    }
    std::size_t num_states() const override { return factor_ + 1; }
    std::size_t num_input_symbols() const override { return 2; }
    std::size_t num_output_symbols() const override { return 2; }
    State initial_state(Symbol x) const override {
        require(x < 2, "SpawningCounter: input out of range");
        return x == 0 ? 0 : factor_;
    }
    Symbol output(State q) const override {
        require(q <= factor_, "SpawningCounter: state out of range");
        return q == 0 ? 0 : 1;  // 1 while still a seed
    }
    std::vector<State> apply(State initiator, State responder) const override {
        if (initiator >= 1) {
            // A seed buds one worker per encounter, with any partner.
            return {initiator - 1, responder, 0};
        }
        return {initiator, responder};
    }
    std::size_t max_offspring() const override { return 3; }

private:
    std::uint32_t factor_;
};

}  // namespace

std::unique_ptr<BirthDeathProtocol> make_annihilating_majority_protocol() {
    return std::make_unique<AnnihilatingMajority>();
}

std::unique_ptr<BirthDeathProtocol> make_spawning_counter_protocol(std::uint32_t factor) {
    return std::make_unique<SpawningCounter>(factor);
}

}  // namespace popproto
