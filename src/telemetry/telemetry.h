// Runtime telemetry: the *performance* layer beneath the observe library.
//
// The observe library (src/observe) records *semantic* events — snapshots,
// output changes, stop reasons.  This library answers a different question:
// where does the wall time of a run actually go?  Per-phase timers over the
// run-loop kernel and the collapsed super-step pipeline, per-shard
// busy/barrier-wait accounting for the fork-merge thread pool, geometric
// null-skip accounting for the count-batch engine, and a live interaction
// counter that external threads (e.g. a progress reporter) may poll while
// the run executes.  Two exporters consume the result: a Chrome trace-event
// JSON writer (chrome_trace.h, loads in chrome://tracing and Perfetto) and
// a Prometheus-style text exposition (prometheus.h).
//
// Cost contract (mirrors core/observer.h):
//
//  * No collector attached (RunOptions::telemetry == nullptr, the default):
//    one predicted-not-taken branch per probe site — no clock reads, no
//    stores.  bench_observe's *TelemetryOff rows pin this at <= 2% against
//    the unobserved baselines.
//  * POPPROTO_TELEMETRY=OFF at configure time compiles every probe body out
//    entirely (kCompiledIn == false below); the API keeps compiling so call
//    sites need no #ifdefs.
//  * Telemetry never touches the RNG stream or the configuration: a run
//    with a collector attached is bit-identical (same interactions, same
//    RunResult) to one without, on every engine — proven by
//    tests/telemetry_test.cpp.
//
// Threading: a RunTelemetryCollector instruments exactly ONE run at a time
// (reset() between runs; measure_trials rejects a shared collector).  The
// driving thread owns phase stats and counters; the thread pool's workers
// write only disjoint per-task slots whose reads happen after the round
// barrier; the live interaction counter is a relaxed atomic so a progress
// thread may poll it concurrently.

#ifndef POPPROTO_TELEMETRY_TELEMETRY_H
#define POPPROTO_TELEMETRY_TELEMETRY_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef POPPROTO_TELEMETRY_ENABLED
#define POPPROTO_TELEMETRY_ENABLED 1
#endif

namespace popproto::telemetry {

/// False when the tree was configured with -DPOPPROTO_TELEMETRY=OFF: every
/// probe below compiles to an empty inline body and exporters see an
/// all-zero RunTelemetry with enabled == false.
inline constexpr bool kCompiledIn = POPPROTO_TELEMETRY_ENABLED != 0;

// ---------------------------------------------------------------------------
// Phases

/// The instrumented phases of a run.  kStepping is *derived* for
/// per-interaction engines (wall time minus every other top-level phase —
/// clocking each O(ns) interaction individually would dwarf the work);
/// super-step engines measure their stepping as kRunLengthDraw +
/// kSuperStepApply directly.  The k-prefixed sub-phases of the collapsed
/// pipeline nest inside kSuperStepApply and are excluded from the top-level
/// accounting (phase_is_nested).
enum class Phase : std::uint8_t {
    kStepping = 0,      ///< derived: interaction sampling + application
    kSilenceCheck,      ///< Stepper::is_silent under SilenceMode::kPeriodic
    kSnapshotDispatch,  ///< observer snapshot emission (run_loop)
    kRunLengthDraw,     ///< birthday-law super-step length proposal
    kSuperStepApply,    ///< one whole collapsed super-step
    kShardCarve,        ///< parent-stream hypergeometric pool carves (nested)
    kShardTasks,        ///< the parallel fan-out section, fork to merge (nested)
    kPairCascade,       ///< initiator/responder draws + row matching (nested)
    kDeltaMerge,        ///< aggregate count-delta application (nested)
    kCollisionFixup,    ///< the single colliding interaction (nested)
    kWRecompute,        ///< effective-pair (W) recount (nested)
    kShardTask,         ///< one shard's task body (worker thread, span only)
    kEngineSwitch,      ///< adaptive dispatcher: checkpoint-shaped state transfer
    kCount
};

inline constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);

/// Stable lowercase identifier ("stepping", "silence_check", ...).
const char* phase_name(Phase phase);

/// Nested phases run inside another timed phase and are excluded from the
/// derived kStepping top-level accounting.
bool phase_is_nested(Phase phase);

// ---------------------------------------------------------------------------
// Plain aggregates

/// Accumulated timing of one phase.
struct PhaseStat {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
};

/// Per-shard (== per thread-pool task slot) utilization.  `wait_ns` is the
/// barrier imbalance: round wall time minus this shard's busy time, summed
/// over rounds — the time the round spent waiting on *other* shards after
/// this one finished (plus fork/merge overhead).
struct ShardStat {
    std::uint64_t tasks = 0;
    std::uint64_t busy_ns = 0;
    std::uint64_t wait_ns = 0;
};

/// One timed interval, in nanoseconds since the collector epoch.  tid 0 is
/// the driving thread; tid k >= 1 is shard k-1 of the thread pool.
struct TraceSpan {
    Phase phase = Phase::kStepping;
    std::uint32_t tid = 0;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
};

// ---------------------------------------------------------------------------
// The generic registry (named counters + log2 histograms)

/// A monotonically increasing named counter.  Relaxed atomic: increments
/// may come from any thread; totals are read after the run.
class Counter {
public:
    void add(std::uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// A log2-bucketed histogram of nonnegative values: bucket b counts samples
/// in [2^b, 2^(b+1)) (bucket 0 additionally holds the zeros).
class LogHistogram {
public:
    void record(std::uint64_t value);
    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    std::uint64_t bucket(std::size_t b) const {
        return buckets_[b].load(std::memory_order_relaxed);
    }
    static constexpr std::size_t kNumBuckets = 64;

private:
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/// Read-only copies for exporters.
struct CounterSnapshot {
    std::string name;
    std::uint64_t value = 0;
};
struct HistogramSnapshot {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, LogHistogram::kNumBuckets> buckets{};
};

/// Named metric registry.  Registration is mutex-guarded and returns a
/// stable reference (deque-backed), so hot paths register once up front and
/// then increment lock-free; lookup of an existing name returns the same
/// instrument.  Usable standalone (e.g. process-wide counters for a future
/// simulation service) and embedded per-run by RunTelemetryCollector.
class TelemetryRegistry {
public:
    Counter& counter(std::string_view name);
    LogHistogram& histogram(std::string_view name);

    std::vector<CounterSnapshot> counters() const;
    std::vector<HistogramSnapshot> histograms() const;

    /// Drops every instrument (references obtained earlier dangle).
    void clear();

private:
    mutable std::mutex mutex_;
    std::deque<std::pair<std::string, Counter>> counters_;
    std::deque<std::pair<std::string, LogHistogram>> histograms_;
};

// ---------------------------------------------------------------------------
// RunTelemetry: the structured result attached to RunResult

/// Everything the collector measured about one run.  Attached to
/// RunResult::telemetry as a shared_ptr when RunOptions::telemetry was set;
/// the exporters (chrome_trace.h, prometheus.h) consume it as-is.
struct RunTelemetry {
    /// Schema version of the exported forms (chrome trace metadata,
    /// prometheus HELP text, JsonlTraceWriter's "telemetry" event).
    static constexpr int kSchemaVersion = 1;

    /// True iff probes were compiled in AND a collector was attached.
    bool enabled = false;

    std::string engine;  ///< observed_engine_name of the executing engine
    std::uint64_t population = 0;
    unsigned threads = 1;

    std::uint64_t wall_ns = 0;
    std::uint64_t interactions = 0;
    std::uint64_t effective_interactions = 0;

    /// Indexed by Phase.  kStepping is derived (see Phase).
    std::array<PhaseStat, kNumPhases> phases{};

    /// One slot per thread-pool task (== shard); empty for serial engines.
    std::vector<ShardStat> shards;
    std::uint64_t pool_rounds = 0;     ///< super-steps dispatched via the pool
    std::uint64_t inline_rounds = 0;   ///< sub-threshold rounds run inline

    // Super-step engine accounting.
    std::uint64_t super_steps = 0;
    std::uint64_t clamped_super_steps = 0;  ///< cut at a boundary, no collision
    std::uint64_t super_step_pairs = 0;     ///< collision-free pairs executed

    // Count-batch geometric-skip accounting.
    std::uint64_t geometric_skips = 0;
    std::uint64_t null_interactions_skipped = 0;

    /// Phase-adaptive dispatcher accounting: one entry per engine segment,
    /// in execution order, attributing the run's interactions and wall time
    /// to the concrete engine that executed them.  Empty for static engines.
    struct EngineSegment {
        std::string engine;  ///< observed_engine_name of the segment engine
        std::uint64_t interactions = 0;
        std::uint64_t wall_ns = 0;
    };
    std::vector<EngineSegment> engine_segments;
    std::uint64_t engine_switches = 0;

    /// Bounded span log for the Chrome trace exporter; spans beyond the
    /// collector's capacity are counted in spans_dropped, never silently
    /// lost.  Durations in the phase stats are exact regardless.
    std::vector<TraceSpan> spans;
    std::uint64_t spans_dropped = 0;

    /// Registry snapshot (skip/run-length histograms, ad-hoc counters).
    std::vector<CounterSnapshot> counters;
    std::vector<HistogramSnapshot> histograms;

    /// Human-readable multi-line summary (phase table + shard table).
    std::string to_string() const;
};

// ---------------------------------------------------------------------------
// PoolTelemetry: what the ThreadPool records

/// Shared state between a ThreadPool and the collector that owns it.  The
/// pool's drain loop stamps per-task begin/end times into the round scratch
/// (disjoint slots, one writer each); ThreadPool::run folds them into
/// `shards` and the span log after the round barrier, on the caller thread,
/// so no synchronization beyond the barrier is needed.
class PoolTelemetry {
public:
    /// Sizes the per-task slots; call before the first instrumented round.
    void configure(std::size_t tasks, std::chrono::steady_clock::time_point epoch,
                   std::size_t max_spans);

    std::uint64_t now_ns() const {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
    }

    std::size_t tasks() const { return shards.size(); }

    /// Called by the task executor (worker or caller thread) around task i.
    void stamp_begin(std::size_t task) { round_begin_[task] = now_ns(); }
    void stamp_end(std::size_t task) { round_end_[task] = now_ns(); }

    /// Folds the finished round into the aggregates (caller thread, after
    /// the barrier).  `executed` is the number of tasks of the round.
    void fold_round(std::uint64_t round_begin_ns, std::uint64_t round_end_ns,
                    std::size_t executed);

    std::vector<ShardStat> shards;
    std::uint64_t rounds = 0;
    std::uint64_t rounds_ns = 0;
    std::vector<TraceSpan> spans;
    std::uint64_t spans_dropped = 0;

private:
    std::chrono::steady_clock::time_point epoch_{};
    std::size_t max_spans_ = 0;
    std::vector<std::uint64_t> round_begin_;
    std::vector<std::uint64_t> round_end_;
};

// ---------------------------------------------------------------------------
// The collector

/// Accumulates one run's telemetry.  Attach via RunOptions::telemetry; the
/// run-loop kernel and the engine steppers drive the probes; after the run,
/// RunResult::telemetry points at the finished RunTelemetry (also available
/// here via telemetry()).  Reusable across runs after reset().
class RunTelemetryCollector {
public:
    /// `max_spans` bounds the Chrome-trace span log (drops are counted in
    /// RunTelemetry::spans_dropped).
    explicit RunTelemetryCollector(std::size_t max_spans = std::size_t{1} << 15);

    /// Nanoseconds since the collector epoch (set by begin_run).
    std::uint64_t now_ns() const {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
    }

    // --- probes (no-ops when !kCompiledIn) --------------------------------

    void begin_run(const char* engine, std::uint64_t population, unsigned threads);
    void finish_run(std::uint64_t interactions, std::uint64_t effective_interactions);

    /// Adaptive-run scope (simulate_adaptive).  The driver brackets the
    /// whole run with begin_adaptive_run / finish_adaptive_run; in between,
    /// each engine segment's run_loop still calls begin_run / finish_run,
    /// which the scope downgrades to *segment* boundaries: the epoch, phase
    /// stats, and counters accumulate across segments, and each inner
    /// finish_run closes one RunTelemetry::engine_segments entry instead of
    /// finalizing.  `start_interactions` is the resume point (nonzero when
    /// the adaptive run itself resumed from a checkpoint), so segment
    /// interaction attribution stays exact across suspends.
    void begin_adaptive_run(std::uint64_t population, unsigned threads,
                            std::uint64_t start_interactions);
    void finish_adaptive_run(std::uint64_t interactions,
                             std::uint64_t effective_interactions);

    void record_phase(Phase phase, std::uint64_t begin_ns, std::uint64_t end_ns,
                      std::uint32_t tid = 0);

    /// One geometric null-skip proposal of `length` executed interactions.
    void record_skip(std::uint64_t length);

    /// One super-step of `pairs` collision-free pairs; `clamped` when the
    /// kernel cut the proposed run at a boundary (no colliding interaction).
    void record_super_step(std::uint64_t pairs, bool clamped);

    /// One sub-threshold parallel-stepper round executed inline (no pool
    /// dispatch; see ParallelCollapsedStepper::kMinPairsPerWorker).
    void record_inline_round() {
        if constexpr (!kCompiledIn) return;
        ++data_->inline_rounds;
    }

    /// Publishes the loop's interaction counter for concurrent polling.
    void publish_interactions(std::uint64_t interactions) {
        if constexpr (!kCompiledIn) return;
        live_interactions_.store(interactions, std::memory_order_relaxed);
    }

    // --- concurrent-read API ----------------------------------------------

    /// The most recently published interaction index (any thread).
    std::uint64_t live_interactions() const {
        return live_interactions_.load(std::memory_order_relaxed);
    }

    /// Wall nanoseconds since begin_run (any thread; 0 before begin_run).
    std::uint64_t live_wall_ns() const { return kCompiledIn ? now_ns() : 0; }

    // --- post-run API ------------------------------------------------------

    /// The pool telemetry handed to a ThreadPool (shards sized on demand by
    /// the parallel stepper).
    PoolTelemetry& pool() { return pool_; }

    /// Epoch for external span stampers (the ThreadPool via PoolTelemetry).
    std::chrono::steady_clock::time_point epoch() const { return epoch_; }
    std::size_t max_spans() const { return max_spans_; }

    TelemetryRegistry& registry() { return registry_; }

    /// The finished telemetry (valid after finish_run; begin_run resets it).
    const RunTelemetry& telemetry() const { return *data_; }

    /// Shares the finished telemetry (what run_loop attaches to RunResult).
    std::shared_ptr<const RunTelemetry> share() const { return data_; }

    /// Clears everything for the next run (begin_run also does this).
    void reset();

private:
    const std::size_t max_spans_;
    std::chrono::steady_clock::time_point epoch_{};
    std::shared_ptr<RunTelemetry> data_;
    std::atomic<std::uint64_t> live_interactions_{0};
    TelemetryRegistry registry_;
    PoolTelemetry pool_;
    bool running_ = false;
    // Adaptive-run scope state (see begin_adaptive_run).
    bool adaptive_scope_ = false;
    std::string segment_engine_;
    std::uint64_t segment_start_ns_ = 0;
    std::uint64_t segment_boundary_interactions_ = 0;
};

/// RAII phase timer: records one record_phase interval on destruction.
/// With a null collector (telemetry disabled at runtime) or kCompiledIn ==
/// false it performs no clock reads at all.
class ScopedTimer {
public:
    ScopedTimer(RunTelemetryCollector* collector, Phase phase, std::uint32_t tid = 0)
        : collector_(kCompiledIn ? collector : nullptr), phase_(phase), tid_(tid) {
        if (collector_ != nullptr) begin_ns_ = collector_->now_ns();
    }
    ~ScopedTimer() {
        if (collector_ != nullptr)
            collector_->record_phase(phase_, begin_ns_, collector_->now_ns(), tid_);
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    RunTelemetryCollector* const collector_;
    const Phase phase_;
    const std::uint32_t tid_;
    std::uint64_t begin_ns_ = 0;
};

}  // namespace popproto::telemetry

#endif  // POPPROTO_TELEMETRY_TELEMETRY_H
