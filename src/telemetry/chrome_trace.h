// Chrome trace-event exporter: serializes a RunTelemetry span log as a JSON
// object trace ({"traceEvents": [...]}) loadable in chrome://tracing and
// Perfetto (ui.perfetto.dev).  Spans become "X" (complete) events with
// microsecond ts/dur; tid 0 is the driving thread, tid k >= 1 is pool shard
// k-1, each named via thread_name metadata events.

#ifndef POPPROTO_TELEMETRY_CHROME_TRACE_H
#define POPPROTO_TELEMETRY_CHROME_TRACE_H

#include <iosfwd>
#include <string>

#include "telemetry/telemetry.h"

namespace popproto::telemetry {

/// Writes the trace to `out`.  Throws std::runtime_error if the stream is in
/// a failed state afterwards.
void write_chrome_trace(std::ostream& out, const RunTelemetry& telemetry);

/// Writes the trace to `path`; throws std::runtime_error (message includes
/// the path) on open or write failure.
void write_chrome_trace_file(const std::string& path, const RunTelemetry& telemetry);

}  // namespace popproto::telemetry

#endif  // POPPROTO_TELEMETRY_CHROME_TRACE_H
