#include "telemetry/telemetry.h"

#include <bit>
#include <iomanip>
#include <sstream>

namespace popproto::telemetry {

const char* phase_name(Phase phase) {
    switch (phase) {
        case Phase::kStepping:
            return "stepping";
        case Phase::kSilenceCheck:
            return "silence_check";
        case Phase::kSnapshotDispatch:
            return "snapshot_dispatch";
        case Phase::kRunLengthDraw:
            return "run_length_draw";
        case Phase::kSuperStepApply:
            return "super_step_apply";
        case Phase::kShardCarve:
            return "shard_carve";
        case Phase::kShardTasks:
            return "shard_tasks";
        case Phase::kPairCascade:
            return "pair_cascade";
        case Phase::kDeltaMerge:
            return "delta_merge";
        case Phase::kCollisionFixup:
            return "collision_fixup";
        case Phase::kWRecompute:
            return "w_recompute";
        case Phase::kShardTask:
            return "shard_task";
        case Phase::kEngineSwitch:
            return "engine_switch";
        case Phase::kCount:
            break;
    }
    return "unknown";
}

bool phase_is_nested(Phase phase) {
    switch (phase) {
        case Phase::kShardCarve:
        case Phase::kShardTasks:
        case Phase::kPairCascade:
        case Phase::kDeltaMerge:
        case Phase::kCollisionFixup:
        case Phase::kWRecompute:
        case Phase::kShardTask:
            return true;
        default:
            return false;
    }
}

void LogHistogram::record(std::uint64_t value) {
    // bucket = floor(log2(value)), with the zeros folded into bucket 0.
    const int bucket = value == 0 ? 0 : std::bit_width(value) - 1;
    buckets_[static_cast<std::size_t>(bucket)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

Counter& TelemetryRegistry::counter(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [existing, instrument] : counters_)
        if (existing == name) return instrument;
    counters_.emplace_back(std::piecewise_construct,
                           std::forward_as_tuple(std::string(name)), std::forward_as_tuple());
    return counters_.back().second;
}

LogHistogram& TelemetryRegistry::histogram(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [existing, instrument] : histograms_)
        if (existing == name) return instrument;
    histograms_.emplace_back(std::piecewise_construct,
                             std::forward_as_tuple(std::string(name)),
                             std::forward_as_tuple());
    return histograms_.back().second;
}

std::vector<CounterSnapshot> TelemetryRegistry::counters() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<CounterSnapshot> out;
    out.reserve(counters_.size());
    for (const auto& [name, instrument] : counters_)
        out.push_back({name, instrument.value()});
    return out;
}

std::vector<HistogramSnapshot> TelemetryRegistry::histograms() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<HistogramSnapshot> out;
    out.reserve(histograms_.size());
    for (const auto& [name, instrument] : histograms_) {
        HistogramSnapshot snapshot;
        snapshot.name = name;
        snapshot.count = instrument.count();
        snapshot.sum = instrument.sum();
        for (std::size_t b = 0; b < LogHistogram::kNumBuckets; ++b)
            snapshot.buckets[b] = instrument.bucket(b);
        out.push_back(std::move(snapshot));
    }
    return out;
}

void TelemetryRegistry::clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    histograms_.clear();
}

void PoolTelemetry::configure(std::size_t tasks, std::chrono::steady_clock::time_point epoch,
                              std::size_t max_spans) {
    epoch_ = epoch;
    max_spans_ = max_spans;
    shards.assign(tasks, ShardStat{});
    round_begin_.assign(tasks, 0);
    round_end_.assign(tasks, 0);
    rounds = 0;
    rounds_ns = 0;
    spans.clear();
    spans_dropped = 0;
}

void PoolTelemetry::fold_round(std::uint64_t round_begin_ns, std::uint64_t round_end_ns,
                               std::size_t executed) {
    const std::uint64_t wall =
        round_end_ns > round_begin_ns ? round_end_ns - round_begin_ns : 0;
    ++rounds;
    rounds_ns += wall;
    for (std::size_t task = 0; task < executed && task < shards.size(); ++task) {
        const std::uint64_t begin = round_begin_[task];
        const std::uint64_t end = round_end_[task];
        const std::uint64_t busy = end > begin ? end - begin : 0;
        ShardStat& stat = shards[task];
        ++stat.tasks;
        stat.busy_ns += busy;
        stat.wait_ns += wall > busy ? wall - busy : 0;
        if (spans.size() < max_spans_) {
            spans.push_back(
                {Phase::kShardTask, static_cast<std::uint32_t>(task + 1), begin, end});
        } else {
            ++spans_dropped;
        }
    }
}

RunTelemetryCollector::RunTelemetryCollector(std::size_t max_spans)
    : max_spans_(max_spans), data_(std::make_shared<RunTelemetry>()) {}

void RunTelemetryCollector::reset() {
    if constexpr (!kCompiledIn) return;
    // A fresh RunTelemetry rather than clearing in place: the previous run's
    // result may still be shared via RunResult::telemetry.
    data_ = std::make_shared<RunTelemetry>();
    registry_.clear();
    pool_ = PoolTelemetry();
    live_interactions_.store(0, std::memory_order_relaxed);
    running_ = false;
    adaptive_scope_ = false;
    segment_engine_.clear();
    segment_start_ns_ = 0;
    segment_boundary_interactions_ = 0;
}

void RunTelemetryCollector::begin_run(const char* engine, std::uint64_t population,
                                      unsigned threads) {
    if constexpr (!kCompiledIn) return;
    if (adaptive_scope_ && running_) {
        // Segment boundary inside an adaptive run: keep the epoch, phase
        // stats, and counters accumulating; just note which concrete engine
        // the next stretch of interactions executes on.
        segment_engine_ = engine;
        segment_start_ns_ = now_ns();
        return;
    }
    reset();
    epoch_ = std::chrono::steady_clock::now();
    data_->enabled = true;
    data_->engine = engine;
    data_->population = population;
    data_->threads = threads;
    data_->spans.reserve(std::min<std::size_t>(max_spans_, 4096));
    running_ = true;
}

void RunTelemetryCollector::finish_run(std::uint64_t interactions,
                                       std::uint64_t effective_interactions) {
    if constexpr (!kCompiledIn) return;
    if (!running_) return;
    if (adaptive_scope_) {
        // Segment boundary: close this segment's attribution entry using
        // the loop's exact final interaction index (the live counter may be
        // stale — the loop publishes *after* the iteration that broke) and
        // keep the run open for the next segment.
        data_->engine_segments.push_back({segment_engine_,
                                          interactions - segment_boundary_interactions_,
                                          now_ns() - segment_start_ns_});
        segment_boundary_interactions_ = interactions;
        publish_interactions(interactions);
        return;
    }
    running_ = false;
    RunTelemetry& data = *data_;
    data.wall_ns = now_ns();
    data.interactions = interactions;
    data.effective_interactions = effective_interactions;
    publish_interactions(interactions);

    // Derived stepping time: the loop remainder no explicit timer covers.
    // Per-interaction engines spend it sampling and applying interactions
    // (clocking each O(ns) step individually would dwarf the work); for
    // super-step engines it is the residual kernel overhead around the
    // explicit kRunLengthDraw / kSuperStepApply phases.
    std::uint64_t attributed = 0;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        const auto phase = static_cast<Phase>(p);
        if (phase == Phase::kStepping || phase_is_nested(phase)) continue;
        attributed += data.phases[p].total_ns;
    }
    PhaseStat& stepping = data.phases[static_cast<std::size_t>(Phase::kStepping)];
    stepping.total_ns = data.wall_ns > attributed ? data.wall_ns - attributed : 0;
    stepping.max_ns = 0;
    stepping.calls = 0;

    // Fold the pool's per-shard accounting and spans.  The pool log has
    // its own max_spans budget, so the merged trace holds at most
    // 2 * max_spans spans — appending it whole keeps the shard lanes
    // visible even when the driving thread exhausted its own budget first
    // (a long run drops the tail of BOTH logs, never one lane entirely).
    data.shards = pool_.shards;
    data.pool_rounds = pool_.rounds;
    data.spans.insert(data.spans.end(), pool_.spans.begin(), pool_.spans.end());
    data.spans_dropped += pool_.spans_dropped;

    data.counters = registry_.counters();
    data.histograms = registry_.histograms();
}

void RunTelemetryCollector::begin_adaptive_run(std::uint64_t population, unsigned threads,
                                               std::uint64_t start_interactions) {
    if constexpr (!kCompiledIn) return;
    begin_run("adaptive", population, threads);
    adaptive_scope_ = true;
    segment_boundary_interactions_ = start_interactions;
}

void RunTelemetryCollector::finish_adaptive_run(std::uint64_t interactions,
                                                std::uint64_t effective_interactions) {
    if constexpr (!kCompiledIn) return;
    adaptive_scope_ = false;
    if (running_) {
        data_->engine_switches =
            data_->engine_segments.empty() ? 0 : data_->engine_segments.size() - 1;
        finish_run(interactions, effective_interactions);
    }
}

void RunTelemetryCollector::record_phase(Phase phase, std::uint64_t begin_ns,
                                         std::uint64_t end_ns, std::uint32_t tid) {
    if constexpr (!kCompiledIn) return;
    const std::uint64_t duration = end_ns > begin_ns ? end_ns - begin_ns : 0;
    PhaseStat& stat = data_->phases[static_cast<std::size_t>(phase)];
    ++stat.calls;
    stat.total_ns += duration;
    if (duration > stat.max_ns) stat.max_ns = duration;
    if (data_->spans.size() < max_spans_) {
        data_->spans.push_back({phase, tid, begin_ns, end_ns});
    } else {
        ++data_->spans_dropped;
    }
}

void RunTelemetryCollector::record_skip(std::uint64_t length) {
    if constexpr (!kCompiledIn) return;
    ++data_->geometric_skips;
    data_->null_interactions_skipped += length;
    registry_.histogram("null_skip_length_log2").record(length);
}

void RunTelemetryCollector::record_super_step(std::uint64_t pairs, bool clamped) {
    if constexpr (!kCompiledIn) return;
    ++data_->super_steps;
    if (clamped) ++data_->clamped_super_steps;
    data_->super_step_pairs += pairs;
    registry_.histogram("super_step_pairs_log2").record(pairs);
}

namespace {

std::string format_ms(std::uint64_t ns) {
    std::ostringstream out;
    out << std::fixed << std::setprecision(3) << static_cast<double>(ns) / 1e6;
    return out.str();
}

}  // namespace

std::string RunTelemetry::to_string() const {
    std::ostringstream out;
    out << "telemetry (schema v" << kSchemaVersion << "): engine=" << engine
        << " n=" << population << " threads=" << threads << " wall_ms=" << format_ms(wall_ns)
        << " interactions=" << interactions << " effective=" << effective_interactions << "\n";
    out << "phases (ms, calls, max_ms):\n";
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        const PhaseStat& stat = phases[p];
        if (stat.calls == 0 && stat.total_ns == 0) continue;
        out << "  " << phase_name(static_cast<Phase>(p)) << ": " << format_ms(stat.total_ns)
            << " ms, " << stat.calls << " calls, max " << format_ms(stat.max_ns) << " ms\n";
    }
    if (!shards.empty()) {
        out << "shards (tasks, busy_ms, wait_ms):\n";
        for (std::size_t k = 0; k < shards.size(); ++k) {
            out << "  shard " << k << ": " << shards[k].tasks << " tasks, "
                << format_ms(shards[k].busy_ns) << " busy, " << format_ms(shards[k].wait_ns)
                << " wait\n";
        }
        out << "pool rounds: " << pool_rounds << " pooled, " << inline_rounds << " inline\n";
    }
    if (super_steps != 0) {
        out << "super-steps: " << super_steps << " (" << clamped_super_steps << " clamped), "
            << super_step_pairs << " collision-free pairs\n";
    }
    if (geometric_skips != 0) {
        out << "geometric skips: " << geometric_skips << " runs, "
            << null_interactions_skipped << " null interactions skipped\n";
    }
    if (!engine_segments.empty()) {
        out << "engine segments (" << engine_switches << " switches):\n";
        for (std::size_t k = 0; k < engine_segments.size(); ++k) {
            const EngineSegment& segment = engine_segments[k];
            out << "  segment " << k << ": " << segment.engine << ", "
                << segment.interactions << " interactions, " << format_ms(segment.wall_ns)
                << " ms\n";
        }
    }
    out << "spans: " << spans.size() << " recorded, " << spans_dropped << " dropped\n";
    return out.str();
}

}  // namespace popproto::telemetry
