#include "telemetry/prometheus.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace popproto::telemetry {

namespace {

void write_seconds(std::ostream& out, std::uint64_t ns) {
    out << std::fixed << std::setprecision(9) << static_cast<double>(ns) / 1e9;
}

void family(std::ostream& out, const char* name, const char* type, const char* help) {
    out << "# HELP " << name << ' ' << help << "\n# TYPE " << name << ' ' << type << '\n';
}

// Registry names are free-form; Prometheus metric names are
// [a-zA-Z_:][a-zA-Z0-9_:]*, so anything else maps to '_'.
std::string sanitize(const std::string& name) {
    std::string out = name;
    for (char& c : out) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        if (!ok) c = '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
    return out;
}

}  // namespace

void write_prometheus(std::ostream& out, const RunTelemetry& telemetry) {
    family(out, "popproto_run_info", "gauge",
           "Run identity (value is the telemetry schema version).");
    out << "popproto_run_info{engine=\"" << telemetry.engine
        << "\",population=\"" << telemetry.population << "\",threads=\""
        << telemetry.threads << "\"} " << RunTelemetry::kSchemaVersion << '\n';

    family(out, "popproto_run_wall_seconds", "gauge", "Wall time of the run.");
    out << "popproto_run_wall_seconds ";
    write_seconds(out, telemetry.wall_ns);
    out << '\n';

    family(out, "popproto_run_interactions_total", "counter",
           "Scheduler interactions executed (including nulls).");
    out << "popproto_run_interactions_total " << telemetry.interactions << '\n';
    family(out, "popproto_run_effective_interactions_total", "counter",
           "State-changing interactions executed.");
    out << "popproto_run_effective_interactions_total "
        << telemetry.effective_interactions << '\n';

    family(out, "popproto_phase_seconds_total", "counter",
           "Wall seconds spent per instrumented run phase.");
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        const PhaseStat& stat = telemetry.phases[p];
        if (stat.calls == 0 && stat.total_ns == 0) continue;
        out << "popproto_phase_seconds_total{phase=\""
            << phase_name(static_cast<Phase>(p)) << "\"} ";
        write_seconds(out, stat.total_ns);
        out << '\n';
    }
    family(out, "popproto_phase_calls_total", "counter",
           "Invocations per instrumented run phase.");
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        const PhaseStat& stat = telemetry.phases[p];
        if (stat.calls == 0) continue;
        out << "popproto_phase_calls_total{phase=\""
            << phase_name(static_cast<Phase>(p)) << "\"} " << stat.calls << '\n';
    }

    if (!telemetry.shards.empty()) {
        family(out, "popproto_shard_busy_seconds_total", "counter",
               "Per-shard task execution time in the fork-merge pool.");
        for (std::size_t k = 0; k < telemetry.shards.size(); ++k) {
            out << "popproto_shard_busy_seconds_total{shard=\"" << k << "\"} ";
            write_seconds(out, telemetry.shards[k].busy_ns);
            out << '\n';
        }
        family(out, "popproto_shard_wait_seconds_total", "counter",
               "Per-shard barrier-imbalance wait time (round wall minus busy).");
        for (std::size_t k = 0; k < telemetry.shards.size(); ++k) {
            out << "popproto_shard_wait_seconds_total{shard=\"" << k << "\"} ";
            write_seconds(out, telemetry.shards[k].wait_ns);
            out << '\n';
        }
        family(out, "popproto_shard_tasks_total", "counter",
               "Per-shard tasks executed by the fork-merge pool.");
        for (std::size_t k = 0; k < telemetry.shards.size(); ++k) {
            out << "popproto_shard_tasks_total{shard=\"" << k << "\"} "
                << telemetry.shards[k].tasks << '\n';
        }
        family(out, "popproto_pool_rounds_total", "counter",
               "Super-step rounds dispatched through the pool vs run inline.");
        out << "popproto_pool_rounds_total{path=\"pooled\"} " << telemetry.pool_rounds
            << '\n';
        out << "popproto_pool_rounds_total{path=\"inline\"} " << telemetry.inline_rounds
            << '\n';
    }

    if (telemetry.super_steps != 0) {
        family(out, "popproto_super_steps_total", "counter",
               "Collapsed super-steps executed (clamped = cut at a boundary).");
        out << "popproto_super_steps_total{clamped=\"false\"} "
            << telemetry.super_steps - telemetry.clamped_super_steps << '\n';
        out << "popproto_super_steps_total{clamped=\"true\"} "
            << telemetry.clamped_super_steps << '\n';
        family(out, "popproto_super_step_pairs_total", "counter",
               "Collision-free pairs executed inside super-steps.");
        out << "popproto_super_step_pairs_total " << telemetry.super_step_pairs << '\n';
    }

    if (telemetry.geometric_skips != 0) {
        family(out, "popproto_geometric_skips_total", "counter",
               "Geometric null-run skips taken by the count-batch engine.");
        out << "popproto_geometric_skips_total " << telemetry.geometric_skips << '\n';
        family(out, "popproto_null_interactions_skipped_total", "counter",
               "Null interactions skipped in bulk via geometric runs.");
        out << "popproto_null_interactions_skipped_total "
            << telemetry.null_interactions_skipped << '\n';
    }

    if (!telemetry.engine_segments.empty()) {
        family(out, "popproto_engine_switches_total", "counter",
               "Mid-run engine switches performed by the adaptive dispatcher.");
        out << "popproto_engine_switches_total " << telemetry.engine_switches << '\n';
        family(out, "popproto_engine_segment_seconds_total", "counter",
               "Wall seconds per adaptive engine segment, in execution order.");
        for (std::size_t k = 0; k < telemetry.engine_segments.size(); ++k) {
            out << "popproto_engine_segment_seconds_total{segment=\"" << k
                << "\",engine=\"" << telemetry.engine_segments[k].engine << "\"} ";
            write_seconds(out, telemetry.engine_segments[k].wall_ns);
            out << '\n';
        }
        family(out, "popproto_engine_segment_interactions_total", "counter",
               "Interactions attributed to each adaptive engine segment.");
        for (std::size_t k = 0; k < telemetry.engine_segments.size(); ++k) {
            out << "popproto_engine_segment_interactions_total{segment=\"" << k
                << "\",engine=\"" << telemetry.engine_segments[k].engine << "\"} "
                << telemetry.engine_segments[k].interactions << '\n';
        }
    }

    family(out, "popproto_trace_spans_dropped_total", "counter",
           "Trace spans beyond the collector capacity (stats stay exact).");
    out << "popproto_trace_spans_dropped_total " << telemetry.spans_dropped << '\n';

    for (const CounterSnapshot& counter : telemetry.counters) {
        const std::string name = "popproto_" + sanitize(counter.name) + "_total";
        family(out, name.c_str(), "counter", "Registry counter.");
        out << name << ' ' << counter.value << '\n';
    }

    for (const HistogramSnapshot& histogram : telemetry.histograms) {
        const std::string name = "popproto_" + sanitize(histogram.name);
        family(out, name.c_str(), "histogram",
               "Registry log2 histogram (bucket b spans [2^b, 2^(b+1))).");
        std::size_t top = 0;
        for (std::size_t b = 0; b < LogHistogram::kNumBuckets; ++b)
            if (histogram.buckets[b] != 0) top = b;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b <= top; ++b) {
            cumulative += histogram.buckets[b];
            // le is the inclusive upper edge 2^(b+1)-1 of log2 bucket b.
            const std::uint64_t le =
                b + 1 >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << (b + 1)) - 1;
            out << name << "_bucket{le=\"" << le << "\"} " << cumulative << '\n';
        }
        out << name << "_bucket{le=\"+Inf\"} " << histogram.count << '\n';
        out << name << "_sum " << histogram.sum << '\n';
        out << name << "_count " << histogram.count << '\n';
    }

    if (!out) throw std::runtime_error("write_prometheus: stream write failed");
}

void write_prometheus_file(const std::string& path, const RunTelemetry& telemetry) {
    std::ofstream out(path);
    if (!out.is_open())
        throw std::runtime_error("write_prometheus_file: cannot open " + path);
    try {
        write_prometheus(out, telemetry);
    } catch (const std::runtime_error&) {
        throw std::runtime_error("write_prometheus_file: write failed for " + path);
    }
}

}  // namespace popproto::telemetry
