#include "telemetry/chrome_trace.h"

#include <fstream>
#include <ostream>
#include <set>
#include <stdexcept>

namespace popproto::telemetry {

namespace {

// The span log stores integer nanoseconds; the trace-event format wants
// microsecond doubles.  Emitting fixed 3-decimal microseconds keeps full
// nanosecond precision without float formatting surprises.
void write_us(std::ostream& out, std::uint64_t ns) {
    out << ns / 1000 << '.';
    const std::uint64_t frac = ns % 1000;
    out << static_cast<char>('0' + frac / 100) << static_cast<char>('0' + frac / 10 % 10)
        << static_cast<char>('0' + frac % 10);
}

void write_thread_name(std::ostream& out, std::uint32_t tid, const std::string& name,
                       bool& first) {
    if (!first) out << ",\n";
    first = false;
    out << R"({"ph":"M","pid":0,"tid":)" << tid
        << R"(,"name":"thread_name","args":{"name":")" << name << R"("}})";
}

}  // namespace

void write_chrome_trace(std::ostream& out, const RunTelemetry& telemetry) {
    out << "{\"displayTimeUnit\":\"ms\",\n\"otherData\":{"
        << "\"schema_version\":" << RunTelemetry::kSchemaVersion << ",\"engine\":\""
        << telemetry.engine << "\",\"population\":" << telemetry.population
        << ",\"threads\":" << telemetry.threads << ",\"interactions\":"
        << telemetry.interactions << ",\"spans_dropped\":" << telemetry.spans_dropped
        << "},\n\"traceEvents\":[\n";

    bool first = true;
    std::set<std::uint32_t> tids;
    tids.insert(0);
    for (const TraceSpan& span : telemetry.spans) tids.insert(span.tid);
    for (const std::uint32_t tid : tids) {
        write_thread_name(out, tid,
                          tid == 0 ? "run_loop" : "shard " + std::to_string(tid - 1), first);
    }

    // Adaptive runs: one span per engine segment on a dedicated lane, laid
    // end-to-end by cumulative segment wall time (the segment log records
    // durations, not absolute stamps; the switch transfers between them are
    // the kEngineSwitch spans on the run_loop lane).
    if (!telemetry.engine_segments.empty()) {
        const std::uint32_t segments_tid = *tids.rbegin() + 1;
        write_thread_name(out, segments_tid, "engine segments", first);
        std::uint64_t cursor_ns = 0;
        for (const auto& segment : telemetry.engine_segments) {
            out << ",\n";
            out << R"({"ph":"X","pid":0,"tid":)" << segments_tid << ",\"ts\":";
            write_us(out, cursor_ns);
            out << ",\"dur\":";
            write_us(out, segment.wall_ns);
            out << ",\"name\":\"" << segment.engine << "\",\"args\":{\"interactions\":"
                << segment.interactions << "}}";
            cursor_ns += segment.wall_ns;
        }
    }

    for (const TraceSpan& span : telemetry.spans) {
        if (!first) out << ",\n";
        first = false;
        out << R"({"ph":"X","pid":0,"tid":)" << span.tid << ",\"ts\":";
        write_us(out, span.begin_ns);
        out << ",\"dur\":";
        write_us(out, span.end_ns > span.begin_ns ? span.end_ns - span.begin_ns : 0);
        out << ",\"name\":\"" << phase_name(span.phase) << "\"}";
    }
    out << "\n]}\n";
    if (!out) throw std::runtime_error("write_chrome_trace: stream write failed");
}

void write_chrome_trace_file(const std::string& path, const RunTelemetry& telemetry) {
    std::ofstream out(path);
    if (!out.is_open())
        throw std::runtime_error("write_chrome_trace_file: cannot open " + path);
    try {
        write_chrome_trace(out, telemetry);
    } catch (const std::runtime_error&) {
        throw std::runtime_error("write_chrome_trace_file: write failed for " + path);
    }
}

}  // namespace popproto::telemetry
