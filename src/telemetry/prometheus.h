// Prometheus text-exposition exporter: serializes a RunTelemetry (phase
// timers, shard utilization, run gauges, registry counters and histograms)
// in the Prometheus 0.0.4 text format, one metric family per block with
// HELP/TYPE headers.  Consumable by promtool, a node-exporter textfile
// collector, or any human with eyes.

#ifndef POPPROTO_TELEMETRY_PROMETHEUS_H
#define POPPROTO_TELEMETRY_PROMETHEUS_H

#include <iosfwd>
#include <string>

#include "telemetry/telemetry.h"

namespace popproto::telemetry {

/// Writes the exposition to `out`.  Throws std::runtime_error if the stream
/// is in a failed state afterwards.
void write_prometheus(std::ostream& out, const RunTelemetry& telemetry);

/// Writes the exposition to `path`; throws std::runtime_error (message
/// includes the path) on open or write failure.
void write_prometheus_file(const std::string& path, const RunTelemetry& telemetry);

}  // namespace popproto::telemetry

#endif  // POPPROTO_TELEMETRY_PROMETHEUS_H
