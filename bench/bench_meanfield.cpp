// Mean-field engine microbenchmarks (google-benchmark).
//
// Measures the headline property of the fluid-limit engine — prediction
// cost independent of n — against the batch simulation engine on the same
// workload (two-way epidemic from a 1/64 infected density, fluid horizon
// t_end = 8, i.e. 8n interactions), and records the measured ODE-vs-
// simulation sup-norm deviation at each n as benchmark counters, so the
// O(1/sqrt(n)) empirical convergence lands in BENCH_bench_meanfield.json
// next to the timings (EXPERIMENTS.md, "Mean-field prediction").

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "bench_util.h"
#include "core/batch_simulator.h"
#include "core/configuration.h"
#include "core/simulator.h"
#include "meanfield/comparator.h"
#include "meanfield/integrator.h"
#include "protocols/epidemic.h"
#include "randomized/trials.h"

namespace {

using namespace popproto;

constexpr double kHorizon = 8.0;  // fluid time; 8n interactions at size n

CountConfiguration epidemic_initial(const TabulatedProtocol& protocol, std::uint64_t n) {
    return CountConfiguration::from_input_counts(protocol, {n - n / 64, n / 64});
}

/// Fluid prediction: drift assembly + RK45 solve with dense output.  The
/// population size only scales the initial density; cost is O(1) in n.
void BM_FluidSolveEpidemic(benchmark::State& state) {
    const auto protocol = make_epidemic_protocol();
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    const auto initial = epidemic_initial(*protocol, n);
    FluidOptions options;
    options.t_end = kHorizon;
    FluidResult last;
    for (auto _ : state) {
        last = solve_fluid(*protocol, initial, options);
        benchmark::DoNotOptimize(last.final_density.data());
    }
    state.counters["drift_evals"] = benchmark::Counter(static_cast<double>(last.drift_evaluations));
}
BENCHMARK(BM_FluidSolveEpidemic)->RangeMultiplier(16)->Range(1 << 10, 1 << 20)
    ->Unit(benchmark::kMicrosecond);

/// The simulation side of the same workload: one batch-engine run over the
/// identical 8n-interaction horizon.  Cost grows with n.
void BM_BatchSimulateEpidemic(benchmark::State& state) {
    const auto protocol = make_epidemic_protocol();
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    const auto initial = epidemic_initial(*protocol, n);
    RunOptions options;
    options.max_interactions = static_cast<std::uint64_t>(kHorizon) * n;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        options.seed = seed++;
        const RunResult result = simulate_counts(*protocol, initial, options);
        benchmark::DoNotOptimize(result.interactions);
    }
}
BENCHMARK(BM_BatchSimulateEpidemic)->RangeMultiplier(16)->Range(1 << 10, 1 << 20)
    ->Unit(benchmark::kMicrosecond);

/// Cross-validation at size n: the sup-norm deviation between the ODE
/// solution and the mean of 4 simulated trajectories (64-point fluid-time
/// grid), exported as the `sup_dev` counter.  The Bournez et al. fluid
/// limit predicts sup_dev shrinking like O(1/sqrt(n)).
void BM_FluidVsSimulationEpidemic(benchmark::State& state) {
    const auto protocol = make_epidemic_protocol();
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    const auto initial = epidemic_initial(*protocol, n);

    FluidOptions fluid_options;
    fluid_options.t_end = kHorizon;

    TrialOptions trial_options;
    trial_options.trials = 4;
    trial_options.base.engine = SimulationEngine::kCountBatch;
    trial_options.base.seed = 1;
    trial_options.base.max_interactions = static_cast<std::uint64_t>(kHorizon) * n + 1;
    trial_options.base.snapshots = SnapshotSchedule::every(
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(kHorizon) * n / 64));

    TrajectoryDeviation deviation;
    for (auto _ : state) {
        const FluidResult fluid = solve_fluid(*protocol, initial, fluid_options);
        const EmpiricalTrajectory simulated =
            mean_normalized_trajectory(*protocol, initial, trial_options);
        deviation = compare_to_fluid(fluid.solution, simulated);
        benchmark::DoNotOptimize(deviation.points);
    }
    state.counters["sup_dev"] = benchmark::Counter(deviation.sup);
    state.counters["points"] = benchmark::Counter(static_cast<double>(deviation.points));
}
BENCHMARK(BM_FluidVsSimulationEpidemic)
    ->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond);

}  // namespace

POPPROTO_BENCHMARK_MAIN()
