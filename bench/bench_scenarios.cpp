// Microbenchmarks for the interaction-model layer (src/scenarios +
// core/interaction_model.h): the per-interaction cost of each pairing
// discipline relative to the uniform sampler, the price of the
// adversarial probe window, and the game-rule adapter's tabulated hot
// path.  Every row runs a fixed interaction budget far below its
// workload's convergence point, so each measurement executes the same
// deterministic amount of work (seed-pinned; stop_reason is always
// kBudget) — which is what makes the rows stable enough for
// bench/run_benches.sh --compare to regression-gate.  Recorded as
// BENCH_bench_scenarios.json at the repository root.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "bench_util.h"
#include "core/configuration.h"
#include "core/run_loop.h"
#include "core/simulator.h"
#include "protocols/epidemic.h"
#include "scenarios/games.h"
#include "scenarios/scenario_spec.h"

namespace {

using popproto::CountConfiguration;
using popproto::RunOptions;
using popproto::RunResult;
using popproto::ScenarioSpec;

// 8n interactions on a 2048-agent epidemic: mid-spread for every pairing
// discipline (uniform needs ~2n ln n to finish; covers need whole
// n(n-1)-pair epochs), so no row ever stops early on silence.
constexpr std::uint64_t kAgents = 2048;
constexpr std::uint64_t kBudget = std::uint64_t{1} << 14;

RunOptions budget_options() {
    RunOptions options;
    options.seed = 99;
    options.max_interactions = kBudget;
    return options;
}

/// Reference row: the identical workload through the plain uniform
/// sampler (simulate), the floor the scenario models are priced against.
/// items/s is interactions per second in every row of this suite.
void BM_UniformBaselineEpidemic(benchmark::State& state) {
    const auto protocol = popproto::make_epidemic_protocol();
    const auto initial =
        CountConfiguration::from_input_counts(*protocol, {kAgents - 1, 1});
    const RunOptions options = budget_options();
    for (auto _ : state) {
        const RunResult result = popproto::simulate(*protocol, initial, options);
        benchmark::DoNotOptimize(result.interactions);
    }
    state.SetItemsProcessed(state.iterations() * kBudget);
}
BENCHMARK(BM_UniformBaselineEpidemic)->Unit(benchmark::kMillisecond);

/// One row per scenario model, same protocol / population / budget.
void BM_ScenarioEpidemic(benchmark::State& state, const std::string& model) {
    const auto protocol = popproto::make_epidemic_protocol();
    const auto initial =
        CountConfiguration::from_input_counts(*protocol, {kAgents - 1, 1});
    ScenarioSpec spec;
    spec.model = model;
    if (model == "dynamic_graph") spec.phases = {"ring", "star", "complete"};
    const RunOptions options = budget_options();
    for (auto _ : state) {
        const RunResult result =
            popproto::run_scenario(*protocol, initial, spec, options);
        benchmark::DoNotOptimize(result.interactions);
    }
    state.SetItemsProcessed(state.iterations() * kBudget);
}
BENCHMARK_CAPTURE(BM_ScenarioEpidemic, round_robin, "round_robin")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScenarioEpidemic, sweep, "sweep")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScenarioEpidemic, dynamic_graph, "dynamic_graph")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScenarioEpidemic, grid_mobility, "grid_mobility")
    ->Unit(benchmark::kMillisecond);

/// The adversarial cover's probe window is a per-step linear scan over
/// upcoming epoch entries; Arg is the window length (0 = pure random
/// cover, no probing).
void BM_AdversarialProbeWindow(benchmark::State& state) {
    const auto protocol = popproto::make_epidemic_protocol();
    const auto initial =
        CountConfiguration::from_input_counts(*protocol, {kAgents - 1, 1});
    ScenarioSpec spec;
    spec.model = "adversarial";
    spec.probe = static_cast<std::uint64_t>(state.range(0));
    const RunOptions options = budget_options();
    for (auto _ : state) {
        const RunResult result =
            popproto::run_scenario(*protocol, initial, spec, options);
        benchmark::DoNotOptimize(result.interactions);
    }
    state.SetItemsProcessed(state.iterations() * kBudget);
}
BENCHMARK(BM_AdversarialProbeWindow)
    ->Arg(0)
    ->Arg(16)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// The game-rule adapter's output: a TabulatedProtocol on the plain hot
/// path.  A balanced Pavlov population stays mixed (mixed encounters mint
/// defectors as fast as (D,D) encounters retire them), so the run is
/// always budget-bound.
void BM_PavlovGameUniform(benchmark::State& state) {
    const auto protocol =
        popproto::make_game_protocol(popproto::make_pavlov_prisoners_dilemma());
    const auto initial =
        CountConfiguration::from_input_counts(*protocol, {kAgents / 2, kAgents / 2});
    const RunOptions options = budget_options();
    for (auto _ : state) {
        const RunResult result = popproto::simulate(*protocol, initial, options);
        benchmark::DoNotOptimize(result.interactions);
    }
    state.SetItemsProcessed(state.iterations() * kBudget);
}
BENCHMARK(BM_PavlovGameUniform)->Unit(benchmark::kMillisecond);

}  // namespace

POPPROTO_BENCHMARK_MAIN()
