// E7: logspace Turing machines on unary input, simulated with high
// probability by a conjugating automaton (Theorem 10).
//
// Pipeline: unary-mod TM -> Minsky 3-counter program -> leader-driven
// population runtime.  We report success rates (exit code matches the TM)
// and interaction totals as the timer parameter k grows; reliability should
// improve rapidly with k, as the per-test error is Theta(n^-k / m).

#include "bench_util.h"
#include "machines/examples.h"
#include "machines/minsky.h"
#include "randomized/population_machine.h"

namespace {

using namespace popproto;
using namespace popproto::bench;

void run() {
    banner("E7: Turing machine simulation (Theorem 10)",
           "Parity of a unary input via Minsky two-stack coding on a population of\n"
           "n = 21 agents.  Success = population exit code equals the TM verdict.");

    const TuringMachine machine = make_unary_mod_turing_machine(2);
    const MinskyProgram compiled = compile_turing_machine(machine);

    Table table({"x", "k", "runs", "success", "rate", "mean inter."});
    const std::uint64_t population = 21;
    for (std::uint32_t x : {2u, 3u, 4u, 5u}) {
        const std::vector<std::uint32_t> input(x, 1);
        const TuringExecution direct = run_turing_machine(machine, input, 100000);
        for (std::uint32_t k : {2u, 3u, 4u, 5u}) {
            // k = 5 relies on the bulk fast path for its ~20^5-encounter
            // terminal zero verdicts; see PopulationMachineOptions.
            const int trials = k <= 3 ? 30 : (k == 4 ? 12 : 6);
            int successes = 0;
            std::vector<double> interactions;
            for (int trial = 0; trial < trials; ++trial) {
                PopulationMachineOptions options;
                options.timer_parameter = k;
                options.share_capacity = 8;
                options.max_interactions = 60'000'000'000'000ull;
                options.seed = 9000 * x + 700 * k + trial;
                const PopulationMachineResult result = run_population_counter_machine(
                    compiled.program, compiled.initial_counters(input), population, options);
                const bool ok =
                    result.halted &&
                    (result.exit_code == MinskyProgram::kAcceptExitCode) == direct.accepted;
                if (ok) ++successes;
                if (result.halted)
                    interactions.push_back(static_cast<double>(result.interactions));
            }
            table.row({fmt_u(x), fmt_u(k), fmt_u(trials), fmt_u(successes),
                       fmt(static_cast<double>(successes) / trials, 3),
                       fmt(mean(interactions), 0)});
        }
    }
}

}  // namespace

int main() {
    run();
    return 0;
}
