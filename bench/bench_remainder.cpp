// E3: the remainder (mod m) protocol converges in Theta(n^2 log n)
// interactions (Sect. 6 / Theorem 8).
//
// The paper's accounting: (n-1)^2 expected interactions to a unique leader
// plus Theta(n^2 log n) for the leader to meet every agent (coupon
// collector at a 2/n participation rate).  The measured / (n^2 ln n) ratio
// should approach a constant as n grows.

#include "bench_util.h"
#include "core/simulator.h"
#include "presburger/atom_protocols.h"

namespace {

using namespace popproto;
using namespace popproto::bench;

void run() {
    banner("E3: remainder protocol convergence",
           "Theorem 8: Presburger predicates converge in O(n^2 log n) expected\n"
           "interactions; here sum x_i = 0 (mod m) for m in {2, 3, 5}.");

    Table table({"m", "n", "verdict", "mean inter.", "sd", "/(n^2 ln n)"});
    const int trials = 20;
    for (std::int64_t modulus : {2, 3, 5}) {
        for (std::uint64_t n : {16ull, 32ull, 64ull, 128ull, 256ull, 512ull}) {
            const auto protocol = make_remainder_protocol({1}, 0, modulus);
            const auto initial = CountConfiguration::from_input_counts(*protocol, {n});
            const bool expected = (static_cast<std::int64_t>(n) % modulus) == 0;

            std::vector<double> convergence;
            bool all_correct = true;
            for (int trial = 0; trial < trials; ++trial) {
                RunOptions options;
                options.max_interactions = default_budget(n);
                options.seed = 31 * n + 7 * modulus + trial;
                const RunResult result = simulate(*protocol, initial, options);
                convergence.push_back(static_cast<double>(result.last_output_change));
                const Symbol want = expected ? kOutputTrue : kOutputFalse;
                if (!result.consensus || *result.consensus != want) all_correct = false;
            }
            const double scale = static_cast<double>(n) * static_cast<double>(n) *
                                 std::log(static_cast<double>(n));
            table.row({fmt_u(static_cast<std::uint64_t>(modulus)), fmt_u(n),
                       all_correct ? "correct" : "WRONG", fmt(mean(convergence), 0),
                       fmt(stddev(convergence), 0), fmt(mean(convergence) / scale, 4)});
        }
    }
}

}  // namespace

int main() {
    run();
    return 0;
}
