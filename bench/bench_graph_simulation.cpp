// E8: Theorem 7 - any weakly-connected interaction graph can simulate the
// complete graph.
//
// We run the counting protocol directly on the complete graph and its Fig. 1
// lift A' on line, ring, star, and random connected graphs.  The claim is
// qualitative (A' stably computes the same predicate); we additionally
// report the convergence overhead of the baton construction per topology.

#include "bench_util.h"
#include "core/simulator.h"
#include "graphs/graph_simulation.h"
#include "graphs/interaction_graph.h"
#include "protocols/counting.h"

namespace {

using namespace popproto;
using namespace popproto::bench;

void run() {
    banner("E8: restricted interaction graphs (Theorem 7)",
           "Count-to-3 on n = 16 agents: direct protocol on the complete graph vs the\n"
           "Fig. 1 simulator A' on weakly-connected topologies.  All rows must be correct;\n"
           "'overhead' is convergence relative to the direct complete-graph run.");

    const std::uint32_t n = 16;
    const std::uint64_t ones = 5;  // answer: true (>= 3)
    const auto base = make_counting_protocol(3);
    const auto sim = make_graph_simulation_protocol(*base);

    const int trials = 10;

    // Baseline: the plain protocol on the complete graph.
    std::vector<double> baseline;
    bool baseline_correct = true;
    for (int trial = 0; trial < trials; ++trial) {
        const auto initial =
            CountConfiguration::from_input_counts(*base, {n - ones, ones});
        RunOptions options;
        options.max_interactions = default_budget(n);
        options.seed = 42 + trial;
        const RunResult result = simulate(*base, initial, options);
        baseline.push_back(static_cast<double>(result.last_output_change));
        if (!result.consensus || *result.consensus != kOutputTrue) baseline_correct = false;
    }
    const double baseline_mean = mean(baseline);

    Table table({"topology", "edges", "verdict", "mean conv.", "overhead"});
    table.row({"complete(direct)", fmt_u(n * (n - 1)),
               baseline_correct ? "correct" : "WRONG", fmt(baseline_mean, 0), fmt(1.0, 2)});

    struct Topology {
        const char* name;
        InteractionGraph graph;
    };
    std::vector<Topology> topologies;
    topologies.push_back({"complete(A')", InteractionGraph::complete(n)});
    topologies.push_back({"line(A')", InteractionGraph::line(n)});
    topologies.push_back({"ring(A')", InteractionGraph::ring(n)});
    topologies.push_back({"star(A')", InteractionGraph::star(n)});
    topologies.push_back({"grid4x4(A')", InteractionGraph::grid(4, 4)});
    topologies.push_back({"random(A')", InteractionGraph::random_connected(n, 8, 5)});

    std::vector<Symbol> inputs(n, kInputZero);
    for (std::uint64_t i = 0; i < ones; ++i) inputs[3 * i % n] = kInputOne;

    for (const Topology& topology : topologies) {
        std::vector<double> convergence;
        bool all_correct = true;
        for (int trial = 0; trial < trials; ++trial) {
            RunOptions options;
            options.max_interactions = 80'000'000;
            options.stop_after_stable_outputs = 500'000;
            options.seed = 1000 + trial;
            const GraphRunResult result =
                simulate_on_graph(*sim, topology.graph, inputs, options);
            convergence.push_back(static_cast<double>(result.last_output_change));
            if (!result.consensus || *result.consensus != kOutputTrue) all_correct = false;
        }
        table.row({topology.name, fmt_u(topology.graph.edges().size()),
                   all_correct ? "correct" : "WRONG", fmt(mean(convergence), 0),
                   fmt(mean(convergence) / baseline_mean, 1)});
    }
}

}  // namespace

int main() {
    run();
    return 0;
}
