// E5: the Lemma 11 urn process behind the randomized zero test (Theorem 9).
//
// Claims reproduced:
//   (1) loss probability = (N-1) / (m N^k + N-1-m), i.e. Theta(N^-k / m);
//   (2) expected draws conditioned on winning <= N/m;
//   (3) with m = 0, expected draws = O(N^k).

#include "bench_util.h"
#include "randomized/urn.h"

namespace {

using namespace popproto;
using namespace popproto::bench;

void loss_probability_table() {
    banner("E5a: zero-test error probability (Lemma 11.1)",
           "Sampled loss rate vs the exact closed form (N-1)/(m N^k + N-1-m).");
    Table table({"N", "m", "k", "closed form", "sampled", "ratio"});
    Rng rng(2024);
    for (std::uint64_t tokens : {8ull, 16ull, 32ull}) {
        for (std::uint64_t counters : {1ull, 2ull, 8ull}) {
            for (std::uint32_t k : {1u, 2u, 3u}) {
                if (counters + 1 > tokens) continue;
                const double closed = urn_loss_probability(tokens, counters, k);
                // Scale trials so rare events still produce a few hundred hits.
                const int trials =
                    static_cast<int>(std::min(4e6, std::max(200000.0, 400.0 / closed)));
                int losses = 0;
                for (int t = 0; t < trials; ++t)
                    if (sample_urn(tokens, counters, k, rng).lost) ++losses;
                const double sampled = static_cast<double>(losses) / trials;
                table.row({fmt_u(tokens), fmt_u(counters), fmt_u(k), fmt(closed, 6),
                           fmt(sampled, 6), fmt(sampled / closed, 3)});
            }
        }
    }
}

void winning_draws_table() {
    banner("E5b: zero-test draws on nonzero counters (Lemma 11.2)",
           "Mean draws of winning processes vs the N/m bound.");
    Table table({"N", "m", "k", "mean draws", "bound N/m"});
    Rng rng(7);
    const std::uint32_t k = 3;
    for (std::uint64_t tokens : {8ull, 32ull, 128ull}) {
        for (std::uint64_t counters : {1ull, 4ull, 16ull}) {
            if (counters + 1 > tokens) continue;
            double total = 0;
            int wins = 0;
            for (int t = 0; t < 200000; ++t) {
                const UrnOutcome outcome = sample_urn(tokens, counters, k, rng);
                if (!outcome.lost) {
                    total += static_cast<double>(outcome.draws);
                    ++wins;
                }
            }
            table.row({fmt_u(tokens), fmt_u(counters), fmt_u(k), fmt(total / wins, 2),
                       fmt(urn_expected_draws_win_bound(tokens, counters), 2)});
        }
    }
}

void empty_draws_table() {
    banner("E5c: zero-test draws on zero counters (Lemma 11.3)",
           "Mean draws until k consecutive timers with m = 0, vs the O(N^k) bound.");
    Table table({"N", "k", "mean draws", "bound N^k*N/(N-1)"});
    Rng rng(9);
    for (std::uint64_t tokens : {4ull, 8ull, 16ull}) {
        for (std::uint32_t k : {1u, 2u, 3u}) {
            const int trials = 20000;
            double total = 0;
            for (int t = 0; t < trials; ++t)
                total += static_cast<double>(sample_urn(tokens, 0, k, rng).draws);
            table.row({fmt_u(tokens), fmt_u(k), fmt(total / trials, 1),
                       fmt(urn_expected_draws_empty_bound(tokens, k), 1)});
        }
    }
}

}  // namespace

int main() {
    loss_probability_table();
    winning_draws_table();
    empty_draws_table();
    return 0;
}
