// The phase-adaptive dispatcher against the best static engine choice
// (google-benchmark; the evidence behind kAuto's adaptive default in
// core/simulator.h and the EXPERIMENTS.md adaptive-vs-static table).
//
// The workload that motivates runtime switching is the paper's single-seed
// epidemic run to silence: a sparse ignition (one infected agent, almost
// every pair null — count-batch's geometric skips win), a dense transient
// (half the pairs effective — the collapsed super-step engine wins 10x+ at
// n >= 2^20), then a long sparse convergence tail (count-batch again, and
// the tail dominates the interaction count).  Any static engine loses at
// least one phase; the adaptive dispatcher plays each phase with the engine
// that wins it, paying only two checkpoint-shaped transfers.  Args are
// log2(n): /20, /22, /24.
//
// The two controls pin the "never lose" side of the bargain:
//
//  * Dense control — epidemic started at half infected, budget n, the same
//    deep-transient window bench_collapsed measures (an uncapped run grows
//    a sparse convergence tail and stops being single-regime: the adaptive
//    engine switches and *beats* static collapsed on it) — so the adaptive
//    run is a collapsed run plus monitor polls (O(1) per n/64 interactions,
//    no extra RNG draws) and must stay within 5% of the static collapsed
//    engine.
//  * Sparse control — single seed, budget capped at 3n interactions, deep
//    inside the ignition phase (infections grow like e^{2t/n}, so ~e^6 =
//    400 infected at the cap versus the ~20000 that trip the enter
//    threshold near ~5n) — is a count-batch run plus polls and must stay
//    within 5% of static count-batch.  The budget is the smallest that
//    still gives count-batch real work (hundreds of geometric runs): a
//    shorter row only measures the adaptive driver's O(1) setup against an
//    empty run.
//
// Only the /20 rows are perf-gated (scripts/compare_bench.py's
// GATE_ONLY_SUBSTRINGS): the bigger rows are full epidemics measured in
// seconds, recorded for the scaling table rather than regression-judged.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_util.h"
#include "core/adaptive_simulator.h"
#include "core/batch_simulator.h"
#include "core/collapsed_simulator.h"
#include "core/configuration.h"
#include "core/simulator.h"
#include "protocols/epidemic.h"

namespace {

using namespace popproto;

enum class Workload {
    kMixed,   // single seed, to silence: sparse -> dense -> sparse
    kDense,   // half infected, budget n: pure dense transient
    kSparse,  // single seed, budget 3n: pure ignition phase
};

template <typename Engine>
void run_epidemic(benchmark::State& state, Workload workload, Engine&& engine) {
    const std::uint64_t n = std::uint64_t{1} << state.range(0);
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(
        *protocol, workload == Workload::kDense
                       ? std::vector<std::uint64_t>{n / 2, n - n / 2}
                       : std::vector<std::uint64_t>{n - 1, 1});
    std::uint64_t seed = 1;
    std::uint64_t interactions = 0;
    std::uint64_t silent_runs = 0;
    for (auto _ : state) {
        RunOptions options;
        options.seed = ++seed;
        if (workload == Workload::kDense) options.max_interactions = n;
        if (workload == Workload::kSparse) options.max_interactions = 3 * n;
        const RunResult result = engine(*protocol, initial, options);
        interactions += result.interactions;
        silent_runs += result.stop_reason == StopReason::kSilent ? 1 : 0;
        benchmark::DoNotOptimize(result.interactions);
    }
    state.counters["interactions/s"] = benchmark::Counter(
        static_cast<double>(interactions), benchmark::Counter::kIsRate);
    // Cross-check that the mixed rows actually measure full runs to
    // silence (the budget-capped controls report 0 here by design).
    state.counters["silent_runs"] =
        benchmark::Counter(static_cast<double>(silent_runs));
}

const auto kAdaptiveEngine = [](const TabulatedProtocol& p, const CountConfiguration& c,
                                RunOptions o) {
    o.engine = SimulationEngine::kAdaptive;
    return simulate_adaptive(p, c, o);
};
const auto kBatchEngine = [](const TabulatedProtocol& p, const CountConfiguration& c,
                             const RunOptions& o) { return simulate_counts(p, c, o); };
const auto kCollapsedEngine = [](const TabulatedProtocol& p, const CountConfiguration& c,
                                 const RunOptions& o) { return simulate_collapsed(p, c, o); };

void BM_MixedRegimeAdaptive(benchmark::State& state) {
    run_epidemic(state, Workload::kMixed, kAdaptiveEngine);
}
BENCHMARK(BM_MixedRegimeAdaptive)->Arg(20)->Arg(22)->Arg(24);

void BM_MixedRegimeCountBatch(benchmark::State& state) {
    run_epidemic(state, Workload::kMixed, kBatchEngine);
}
BENCHMARK(BM_MixedRegimeCountBatch)->Arg(20)->Arg(22)->Arg(24);

void BM_MixedRegimeCollapsed(benchmark::State& state) {
    run_epidemic(state, Workload::kMixed, kCollapsedEngine);
}
BENCHMARK(BM_MixedRegimeCollapsed)->Arg(20)->Arg(22)->Arg(24);

// Controls compare the adaptive run against the engine that wins the
// regime outright (collapsed on dense, count-batch on sparse; the losing
// engine's deficit is already bench_collapsed's table).
void BM_DenseControlAdaptive(benchmark::State& state) {
    run_epidemic(state, Workload::kDense, kAdaptiveEngine);
}
BENCHMARK(BM_DenseControlAdaptive)->Arg(20)->Arg(22);

void BM_DenseControlCollapsed(benchmark::State& state) {
    run_epidemic(state, Workload::kDense, kCollapsedEngine);
}
BENCHMARK(BM_DenseControlCollapsed)->Arg(20)->Arg(22);

void BM_SparseControlAdaptive(benchmark::State& state) {
    run_epidemic(state, Workload::kSparse, kAdaptiveEngine);
}
BENCHMARK(BM_SparseControlAdaptive)->Arg(20)->Arg(22);

void BM_SparseControlCountBatch(benchmark::State& state) {
    run_epidemic(state, Workload::kSparse, kBatchEngine);
}
BENCHMARK(BM_SparseControlCountBatch)->Arg(20)->Arg(22);

}  // namespace

POPPROTO_BENCHMARK_MAIN()
