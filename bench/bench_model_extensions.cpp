// E13 (extension): the Sect. 8 model variations, measured.
//
// (a) Group size ablation: strict majority via g-way cancellation for
//     g = 2, 3, 5 - larger groups cancel faster per interaction but each
//     interaction reaches g agents; the table shows the net effect.
// (b) Population-changing rules: annihilating majority vs the conventional
//     fixed-population Lemma 5 majority - annihilation shrinks the
//     population as it works, and its survivors encode the exact margin.

#include "bench_util.h"
#include "core/simulator.h"
#include "extensions/birth_death.h"
#include "extensions/multiway.h"
#include "presburger/atom_protocols.h"

namespace {

using namespace popproto;
using namespace popproto::bench;

void group_size_ablation() {
    banner("E13a: group-size ablation (Sect. 8 'larger groups')",
           "Strict majority 45 vs 55 on n = 100: g-way cancellation for g = 2, 3, 5.\n"
           "Convergence = last output change; all rows must be correct.");

    Table table({"group size", "verdict", "mean conv.", "vs g=2"});
    const int trials = 15;
    double baseline = 0.0;
    for (std::size_t g : {2ull, 3ull, 5ull}) {
        const auto protocol = make_multiway_majority_protocol(g);
        CountConfiguration initial(protocol->num_states());
        initial.add(protocol->initial_state(0), 45);
        initial.add(protocol->initial_state(1), 55);

        std::vector<double> convergence;
        bool all_correct = true;
        for (int trial = 0; trial < trials; ++trial) {
            MultiwayRunOptions options;
            options.max_interactions = 50'000'000;
            options.stop_after_stable_outputs = 400'000;
            options.seed = 40 * g + trial;
            const MultiwayRunResult result = simulate_multiway(*protocol, initial, options);
            convergence.push_back(static_cast<double>(result.last_output_change));
            if (!result.consensus || *result.consensus != kOutputTrue) all_correct = false;
        }
        const double m = mean(convergence);
        if (g == 2) baseline = m;
        table.row({fmt_u(g), all_correct ? "correct" : "WRONG", fmt(m, 0),
                   fmt(m / baseline, 2)});
    }
}

void birth_death_ablation() {
    banner("E13b: population-changing rules (Sect. 8 'increase or decrease')",
           "Majority 45 vs 55 on n = 100: annihilating protocol (agents die in\n"
           "pairs) vs the fixed-population Lemma 5 threshold protocol.");

    Table table({"model", "verdict", "mean conv.", "final pop."});
    const int trials = 15;

    {
        const auto protocol = make_annihilating_majority_protocol();
        CountConfiguration initial(protocol->num_states());
        initial.add(0, 45);
        initial.add(1, 55);
        std::vector<double> convergence;
        double final_population = 0;
        bool all_correct = true;
        for (int trial = 0; trial < trials; ++trial) {
            BirthDeathRunOptions options;
            options.max_interactions = 10'000'000;
            options.seed = 900 + trial;
            const BirthDeathRunResult result =
                simulate_birth_death(*protocol, initial, options);
            convergence.push_back(static_cast<double>(result.last_output_change));
            final_population +=
                static_cast<double>(result.final_configuration.population_size());
            if (!result.consensus || *result.consensus != kOutputTrue) all_correct = false;
        }
        table.row({"annihilating", all_correct ? "correct" : "WRONG",
                   fmt(mean(convergence), 0), fmt(final_population / trials, 1)});
    }
    {
        const auto protocol = make_threshold_protocol({1, -1}, 0);
        const auto initial = CountConfiguration::from_input_counts(*protocol, {45, 55});
        std::vector<double> convergence;
        bool all_correct = true;
        for (int trial = 0; trial < trials; ++trial) {
            RunOptions options;
            options.max_interactions = default_budget(100, 128.0);
            options.seed = 900 + trial;
            const RunResult result = simulate(*protocol, initial, options);
            convergence.push_back(static_cast<double>(result.last_output_change));
            if (!result.consensus || *result.consensus != kOutputTrue) all_correct = false;
        }
        table.row({"fixed (Lemma 5)", all_correct ? "correct" : "WRONG",
                   fmt(mean(convergence), 0), fmt(100.0, 1)});
    }
}

}  // namespace

int main() {
    group_size_ablation();
    birth_death_ablation();
    return 0;
}
