// E2: leader election takes exactly (n-1)^2 expected interactions (Sect. 6).
//
// The paper computes sum_{i=2}^{n} C(n,2)/C(i,2) = (n-1)^2.  We verify the
// closed form two independent ways: exactly, by solving the absorbing Markov
// chain over configurations (small n), and empirically, by Monte Carlo means
// (larger n).  The measured/theory ratio should be 1.000 within noise.

#include "analysis/markov.h"
#include "bench_util.h"
#include "core/simulator.h"
#include "protocols/leader_election.h"

namespace {

using namespace popproto;
using namespace popproto::bench;

void run() {
    banner("E2: leader election expected interactions",
           "Paper: expected interactions to a unique leader = (n-1)^2 exactly.\n"
           "'markov' is the exact linear-system solution; 'measured' a Monte Carlo mean.");

    const auto protocol = make_leader_election_protocol();

    Table table({"n", "theory (n-1)^2", "markov exact", "measured", "meas/theory"});
    for (std::uint64_t n : {2ull, 4ull, 8ull, 16ull, 32ull, 64ull, 128ull, 256ull}) {
        const double theory = leader_election_expected_interactions(n);

        std::string markov_cell = "-";
        if (n <= 16) {
            const auto initial = CountConfiguration::from_input_counts(*protocol, {n});
            const double exact = expected_hitting_time(
                *protocol, initial,
                [](const CountConfiguration& c) { return c.count(1) == 1; });
            markov_cell = fmt(exact, 3);
        }

        const int trials = n <= 64 ? 400 : 120;
        std::vector<double> measured;
        for (int trial = 0; trial < trials; ++trial) {
            const auto initial = CountConfiguration::from_input_counts(*protocol, {n});
            RunOptions options;
            options.max_interactions = 64 * n * n + 1024;
            options.seed = 7919 * n + trial;
            const RunResult result = simulate(*protocol, initial, options);
            measured.push_back(static_cast<double>(result.last_output_change));
        }
        const double m = mean(measured);
        table.row({fmt_u(n), fmt(theory, 0), markov_cell, fmt(m, 1), fmt(m / theory, 3)});
    }
}

}  // namespace

int main() {
    run();
    return 0;
}
