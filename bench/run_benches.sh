#!/usr/bin/env bash
# Runs the google-benchmark targets and records their JSON output as
# BENCH_<name>.json at the repository root, giving successive PRs a
# perf trajectory to compare against.
#
# Usage: bench/run_benches.sh [--smoke|--compare] [build-dir] [extra google-benchmark args...]
# The build directory defaults to <repo>/build and must already contain the
# bench binaries (cmake --build <build-dir>).
#
# --smoke runs every suite for a single short iteration and writes the
# JSON under <build-dir>/bench/smoke/ instead of the repository root, so a
# CI pass can prove the binaries run without clobbering recorded numbers.
#
# --compare runs a fresh short pass of the engine suites (bench_throughput
# and bench_collapsed) and diffs their per-benchmark real_time against the
# committed BENCH_<name>.json baselines at the repository root, failing when
# any benchmark regresses by more than 15% beyond the suite-wide median
# ratio (host-drift normalization: shared boxes swing the whole suite
# together, a real regression moves its benchmarks away from the pack) —
# the perf gate for run-loop/engine refactors (wired into scripts/ci.sh).
# Baselines must come from Release builds: the gate refuses "debug"
# recordings outright (bench_util.h stamps popproto_build_type into the
# JSON context).  Both sides are reduced to the per-benchmark MINIMUM over
# repetitions, so refresh a committed baseline with the same protocol the
# gate uses:
#
#   build/bench/bench_throughput --benchmark_format=json \
#       --benchmark_min_time=0.05 --benchmark_repetitions=5 \
#       > BENCH_bench_throughput.json
#
# A single full-run sample per benchmark is NOT a stable baseline on a
# loaded box (±25% run-to-run swings); min-of-repetitions vs
# min-of-repetitions is.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

SMOKE=0
COMPARE=0
if [[ "${1:-}" == "--smoke" ]]; then
    SMOKE=1
    shift
elif [[ "${1:-}" == "--compare" ]]; then
    COMPARE=1
    shift
fi

BUILD_DIR="${1:-$ROOT/build}"
shift || true

# The google-benchmark suites (the remaining bench_* binaries are
# experiment tables with their own output formats).
GBENCH_TARGETS=(bench_throughput bench_collapsed bench_observe bench_meanfield bench_service bench_scenarios bench_adaptive)
if (( COMPARE )); then
    # The perf gate judges the simulation engines plus the observation /
    # telemetry hooks that ride the hot loops (bench_observe's TelemetryOff
    # rows are the <=2% probe-overhead bar), the interaction-model layer
    # (bench_scenarios: fixed-budget seed-pinned rows), bench_service's
    # single-threaded wire-dispatch rows (scripts/compare_bench.py's
    # GATE_ONLY_SUBSTRINGS keeps its registry rows — worker-pool wakeups,
    # scheduler-latency noise — out of the gate), and bench_adaptive's
    # n = 2^20 adaptive-vs-static rows (the bigger rows are recorded for
    # EXPERIMENTS.md but too slow to repeat here).  The meanfield suite is
    # an ODE solver with no hook in the interaction path and too noisy at
    # short iteration counts; recorded for the trajectory but not
    # regression-judged.
    GBENCH_TARGETS=(bench_throughput bench_collapsed bench_observe bench_service bench_scenarios bench_adaptive)
fi

# Check every target up front and report the complete list of missing
# binaries in one message, instead of failing one target at a time.
missing=()
for name in "${GBENCH_TARGETS[@]}"; do
    bin="$BUILD_DIR/bench/$name"
    if [[ ! -x "$bin" ]]; then
        missing+=("$bin")
    fi
done
if (( ${#missing[@]} > 0 )); then
    echo "error: missing google-benchmark binaries (build them first with" >&2
    echo "       'cmake --build $BUILD_DIR'):" >&2
    printf '  %s\n' "${missing[@]}" >&2
    exit 1
fi

OUT_DIR="$ROOT"
EXTRA_ARGS=()
if (( SMOKE )); then
    OUT_DIR="$BUILD_DIR/bench/smoke"
    mkdir -p "$OUT_DIR"
    EXTRA_ARGS=(--benchmark_min_time=0.01)
elif (( COMPARE )); then
    OUT_DIR="$BUILD_DIR/bench/compare"
    mkdir -p "$OUT_DIR"
    # Short repetitions instead of one long run: the gate compares the
    # *minimum* across repetitions, which is far more robust to scheduler
    # noise than any single measurement.
    EXTRA_ARGS=(--benchmark_min_time=0.05 --benchmark_repetitions=5)
fi

for name in "${GBENCH_TARGETS[@]}"; do
    bin="$BUILD_DIR/bench/$name"
    out="$OUT_DIR/BENCH_${name}.json"
    echo "running $name -> ${out#"$ROOT"/}"
    "$bin" --benchmark_format=json "${EXTRA_ARGS[@]}" "$@" > "$out"
done

if (( COMPARE )); then
  for name in "${GBENCH_TARGETS[@]}"; do
    baseline="$ROOT/BENCH_${name}.json"
    fresh="$OUT_DIR/BENCH_${name}.json"
    if [[ ! -f "$baseline" ]]; then
        echo "error: no committed baseline at $baseline" >&2
        exit 1
    fi
    echo "== $name vs committed baseline =="
    python3 "$ROOT/scripts/compare_bench.py" "$baseline" "$fresh" "$BUILD_DIR/bench/$name"
  done
fi
