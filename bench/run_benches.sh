#!/usr/bin/env bash
# Runs the google-benchmark targets and records their JSON output as
# BENCH_<name>.json at the repository root, giving successive PRs a
# perf trajectory to compare against.
#
# Usage: bench/run_benches.sh [--smoke|--compare] [build-dir] [extra google-benchmark args...]
# The build directory defaults to <repo>/build and must already contain the
# bench binaries (cmake --build <build-dir>).
#
# --smoke runs every suite for a single short iteration and writes the
# JSON under <build-dir>/bench/smoke/ instead of the repository root, so a
# CI pass can prove the binaries run without clobbering recorded numbers.
#
# --compare runs a fresh short pass of the engine suites (bench_throughput
# and bench_collapsed) and diffs their per-benchmark real_time against the
# committed BENCH_<name>.json baselines at the repository root, failing when
# any benchmark regresses by more than 15% beyond the suite-wide median
# ratio (host-drift normalization: shared boxes swing the whole suite
# together, a real regression moves its benchmarks away from the pack) —
# the perf gate for run-loop/engine refactors (wired into scripts/ci.sh).
# Baselines must come from Release builds: the gate refuses "debug"
# recordings outright (bench_util.h stamps popproto_build_type into the
# JSON context).  Both sides are reduced to the per-benchmark MINIMUM over
# repetitions, so refresh a committed baseline with the same protocol the
# gate uses:
#
#   build/bench/bench_throughput --benchmark_format=json \
#       --benchmark_min_time=0.05 --benchmark_repetitions=5 \
#       > BENCH_bench_throughput.json
#
# A single full-run sample per benchmark is NOT a stable baseline on a
# loaded box (±25% run-to-run swings); min-of-repetitions vs
# min-of-repetitions is.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

SMOKE=0
COMPARE=0
if [[ "${1:-}" == "--smoke" ]]; then
    SMOKE=1
    shift
elif [[ "${1:-}" == "--compare" ]]; then
    COMPARE=1
    shift
fi

BUILD_DIR="${1:-$ROOT/build}"
shift || true

# The google-benchmark suites (the remaining bench_* binaries are
# experiment tables with their own output formats).
GBENCH_TARGETS=(bench_throughput bench_collapsed bench_observe bench_meanfield bench_service bench_scenarios)
if (( COMPARE )); then
    # The perf gate judges the simulation engines plus the observation /
    # telemetry hooks that ride the hot loops (bench_observe's TelemetryOff
    # rows are the <=2% probe-overhead bar), the interaction-model layer
    # (bench_scenarios: fixed-budget seed-pinned rows), and bench_service's
    # single-threaded wire-dispatch rows (GATE_ONLY_SUBSTRINGS below keeps
    # its registry rows — worker-pool wakeups, scheduler-latency noise —
    # out of the gate).  The meanfield suite is an ODE solver with no hook
    # in the interaction path and too noisy at short iteration counts;
    # recorded for the trajectory but not regression-judged.
    GBENCH_TARGETS=(bench_throughput bench_collapsed bench_observe bench_service bench_scenarios)
fi

# Check every target up front and report the complete list of missing
# binaries in one message, instead of failing one target at a time.
missing=()
for name in "${GBENCH_TARGETS[@]}"; do
    bin="$BUILD_DIR/bench/$name"
    if [[ ! -x "$bin" ]]; then
        missing+=("$bin")
    fi
done
if (( ${#missing[@]} > 0 )); then
    echo "error: missing google-benchmark binaries (build them first with" >&2
    echo "       'cmake --build $BUILD_DIR'):" >&2
    printf '  %s\n' "${missing[@]}" >&2
    exit 1
fi

OUT_DIR="$ROOT"
EXTRA_ARGS=()
if (( SMOKE )); then
    OUT_DIR="$BUILD_DIR/bench/smoke"
    mkdir -p "$OUT_DIR"
    EXTRA_ARGS=(--benchmark_min_time=0.01)
elif (( COMPARE )); then
    OUT_DIR="$BUILD_DIR/bench/compare"
    mkdir -p "$OUT_DIR"
    # Short repetitions instead of one long run: the gate compares the
    # *minimum* across repetitions, which is far more robust to scheduler
    # noise than any single measurement.
    EXTRA_ARGS=(--benchmark_min_time=0.05 --benchmark_repetitions=5)
fi

for name in "${GBENCH_TARGETS[@]}"; do
    bin="$BUILD_DIR/bench/$name"
    out="$OUT_DIR/BENCH_${name}.json"
    echo "running $name -> ${out#"$ROOT"/}"
    "$bin" --benchmark_format=json "${EXTRA_ARGS[@]}" "$@" > "$out"
done

if (( COMPARE )); then
  for name in "${GBENCH_TARGETS[@]}"; do
    baseline="$ROOT/BENCH_${name}.json"
    fresh="$OUT_DIR/BENCH_${name}.json"
    if [[ ! -f "$baseline" ]]; then
        echo "error: no committed baseline at $baseline" >&2
        exit 1
    fi
    echo "== $name vs committed baseline =="
    python3 - "$baseline" "$fresh" "$BUILD_DIR/bench/$name" <<'EOF'
import json
import os
import re
import statistics
import subprocess
import sys
import tempfile

# Fail on a >15% real_time regression *beyond the suite-wide drift*.  On a
# shared box the whole suite swings together with tenant load and frequency
# scaling (uniform 1.3x drifts observed between recording and comparing),
# so per-benchmark ratios are judged against the suite's median ratio: a
# real engine regression moves its benchmarks away from the pack, while
# host drift moves the pack as one.  The median itself is capped at
# MAX_DRIFT so a change that slows *everything* down (e.g. dropping LTO)
# cannot hide inside the normalization.
THRESHOLD = 0.15
MAX_DRIFT = 0.50

# Rows still over the bar after drift normalization are re-measured (the
# flagged rows only, same min-of-repetitions protocol) up to RETRIES more
# times, folding each row's new minimum in before the verdict.  Identical
# binaries on a noisy box swing single rows 1.5x between passes, so any
# single-shot verdict flags a different random row each run; a real
# regression reproduces in every pass, while noise eventually loses to its
# own best sample.
RETRIES = 2

# Recorded for the scaling tables but not regression-judged: the parallel
# rows' wall time is dominated by how many cores the host can actually give
# the shards (oversubscribed rows are pure scheduler noise), and the code
# path behind them is already gated through BM_EpidemicDenseCollapsed.
GATE_EXEMPT_PREFIXES = ("BM_CollapsedScaling/",)

# Suites gated on a subset of their rows.  bench_observe exists to price
# observers, and its pricing rows run small-n workloads to *silence*, where
# per-seed convergence variance swings single rows 1.5x between identical
# binaries — only the telemetry rows (budget-bound workloads; the <=2%
# probe-overhead bar for src/telemetry) are stable enough to gate.  The
# other rows are still recorded and printed for eyeballing.
# bench_service is likewise gated only on its wire-dispatch rows: the
# registry rows time worker-pool wakeups and thread hand-offs, which
# swing with host scheduler latency rather than code changes.
GATE_ONLY_SUBSTRINGS = {"bench_observe": ("Telemetry",),
                        "bench_service": ("Wire",)}

baseline_path, fresh_path = sys.argv[1], sys.argv[2]
bench_bin = sys.argv[3] if len(sys.argv) > 3 else None
gate_only = next((subs for suite, subs in GATE_ONLY_SUBSTRINGS.items()
                  if suite in baseline_path), None)


def build_type(data):
    """The binary's build type.  "popproto_build_type" (bench_util.h's
    POPPROTO_BENCHMARK_MAIN, from NDEBUG) is authoritative; the library's
    own "library_build_type" is the fallback for baselines recorded before
    that key existed — misleadingly "debug" wherever the distro ships a
    debug libbenchmark, which is why the custom key wins."""
    ctx = data.get("context", {})
    return ctx.get("popproto_build_type", ctx.get("library_build_type", "unknown"))


def load(path, side):
    """Per-benchmark best real_time (min over repetitions, noise-robust).
    Refuses non-release numbers: a debug-vs-release diff is meaningless in
    both directions (stale debug baselines mask real regressions)."""
    with open(path) as f:
        data = json.load(f)
    bt = build_type(data)
    if bt != "release":
        print(f"error: {side} {path} was recorded from a '{bt}' build; the\n"
              f"perf gate only accepts release numbers.  Re-record it from a\n"
              f"-DCMAKE_BUILD_TYPE=Release build with the min-of-repetitions\n"
              f"protocol in bench/run_benches.sh's header comment.",
              file=sys.stderr)
        sys.exit(1)
    best = {}
    for b in data["benchmarks"]:
        if b.get("run_type", "iteration") == "aggregate":
            continue
        name = b["name"]
        best[name] = min(best.get(name, float("inf")), b["real_time"])
    return best


baseline = load(baseline_path, "committed baseline")
fresh = load(fresh_path, "fresh run")


def is_exempt(name):
    return name.startswith(GATE_EXEMPT_PREFIXES) or (
        gate_only is not None and not any(sub in name for sub in gate_only))


def evaluate(fresh):
    """Ratios, slowdown-normalized drift, and the gated rows over the bar."""
    ratios = {name: fresh[name] / base_time
              for name, base_time in baseline.items() if name in fresh}
    raw = statistics.median(ratios.values()) if ratios else 1.0
    # Only normalize by *slowdowns*: a uniformly faster host must not
    # raise the bar for individual benchmarks.
    drift = max(raw, 1.0)
    flagged = [name for name, ratio in ratios.items()
               if not is_exempt(name) and ratio > drift * (1 + THRESHOLD)]
    return ratios, raw, drift, flagged


ratios, raw_drift, drift, flagged = evaluate(fresh)
if raw_drift > 1 + MAX_DRIFT:
    print(f"\nFAIL: suite-wide median ratio {raw_drift:.2f} exceeds the "
          f"{1 + MAX_DRIFT:.2f} drift cap — this is not host noise, the "
          f"whole suite got slower", file=sys.stderr)
    sys.exit(1)

retried = set()
for _ in range(RETRIES):
    if not flagged or bench_bin is None:
        break
    retried.update(flagged)
    pattern = "^(" + "|".join(re.escape(name) for name in flagged) + ")$"
    fd, retry_path = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    try:
        subprocess.run(
            [bench_bin, f"--benchmark_filter={pattern}",
             "--benchmark_min_time=0.05", "--benchmark_repetitions=5",
             "--benchmark_format=json", f"--benchmark_out={retry_path}",
             "--benchmark_out_format=json"],
            check=True, stdout=subprocess.DEVNULL)
        for name, best in load(retry_path, "retry run").items():
            fresh[name] = min(fresh.get(name, float("inf")), best)
    finally:
        os.unlink(retry_path)
    ratios, raw_drift, drift, flagged = evaluate(fresh)

regressions = []
width = max(map(len, baseline), default=4)
print(f"suite-wide median ratio (host drift): {drift:.2f}")
if retried:
    print(f"re-measured {len(retried)} flagged row(s), keeping each row's "
          f"best time across passes")
print(f"{'benchmark':<{width}}  {'baseline':>12}  {'fresh':>12}  {'ratio':>6}")
for name, base_time in sorted(baseline.items()):
    if name not in fresh:
        print(f"{name:<{width}}  {base_time:>12.1f}  {'MISSING':>12}")
        regressions.append((name, None))
        continue
    ratio = ratios[name]
    exempt = is_exempt(name)
    bad = not exempt and ratio > drift * (1 + THRESHOLD)
    flag = "  <-- REGRESSION" if bad else ("  (not gated)" if exempt else "")
    print(f"{name:<{width}}  {base_time:>12.1f}  {fresh[name]:>12.1f}  {ratio:>6.2f}{flag}")
    if bad:
        regressions.append((name, ratio))

if regressions:
    print(f"\nFAIL: {len(regressions)} benchmark(s) regressed by more than "
          f"{THRESHOLD:.0%} beyond the {drift:.2f} suite drift against "
          f"{baseline_path}", file=sys.stderr)
    sys.exit(1)
print(f"\nOK: all benchmarks within {THRESHOLD:.0%} of the committed baseline "
      f"(after {drift:.2f} drift normalization)")
EOF
  done
fi
