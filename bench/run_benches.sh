#!/usr/bin/env bash
# Runs the google-benchmark targets and records their JSON output as
# BENCH_<name>.json at the repository root, giving successive PRs a
# perf trajectory to compare against.
#
# Usage: bench/run_benches.sh [--smoke] [build-dir] [extra google-benchmark args...]
# The build directory defaults to <repo>/build and must already contain the
# bench binaries (cmake --build <build-dir>).
#
# --smoke runs every suite for a single short iteration and writes the
# JSON under <build-dir>/bench/smoke/ instead of the repository root, so a
# CI pass can prove the binaries run without clobbering recorded numbers.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
    SMOKE=1
    shift
fi

BUILD_DIR="${1:-$ROOT/build}"
shift || true

# The google-benchmark suites (the remaining bench_* binaries are
# experiment tables with their own output formats).
GBENCH_TARGETS=(bench_throughput bench_observe bench_meanfield)

# Check every target up front and report the complete list of missing
# binaries in one message, instead of failing one target at a time.
missing=()
for name in "${GBENCH_TARGETS[@]}"; do
    bin="$BUILD_DIR/bench/$name"
    if [[ ! -x "$bin" ]]; then
        missing+=("$bin")
    fi
done
if (( ${#missing[@]} > 0 )); then
    echo "error: missing google-benchmark binaries (build them first with" >&2
    echo "       'cmake --build $BUILD_DIR'):" >&2
    printf '  %s\n' "${missing[@]}" >&2
    exit 1
fi

OUT_DIR="$ROOT"
EXTRA_ARGS=()
if (( SMOKE )); then
    OUT_DIR="$BUILD_DIR/bench/smoke"
    mkdir -p "$OUT_DIR"
    EXTRA_ARGS=(--benchmark_min_time=0.01)
fi

for name in "${GBENCH_TARGETS[@]}"; do
    bin="$BUILD_DIR/bench/$name"
    out="$OUT_DIR/BENCH_${name}.json"
    echo "running $name -> ${out#"$ROOT"/}"
    "$bin" --benchmark_format=json "${EXTRA_ARGS[@]}" "$@" > "$out"
done
