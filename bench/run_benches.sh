#!/usr/bin/env bash
# Runs the google-benchmark targets and records their JSON output as
# BENCH_<name>.json at the repository root, giving successive PRs a
# perf trajectory to compare against.
#
# Usage: bench/run_benches.sh [build-dir] [extra google-benchmark args...]
# The build directory defaults to <repo>/build and must already contain the
# bench binaries (cmake --build <build-dir>).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
shift || true

# The google-benchmark suites (the remaining bench_* binaries are
# experiment tables with their own output formats).
GBENCH_TARGETS=(bench_throughput)

for name in "${GBENCH_TARGETS[@]}"; do
    bin="$BUILD_DIR/bench/$name"
    if [[ ! -x "$bin" ]]; then
        echo "error: $bin not found or not executable; build it first" >&2
        exit 1
    fi
    out="$ROOT/BENCH_${name}.json"
    echo "running $name -> ${out#"$ROOT"/}"
    "$bin" --benchmark_format=json "$@" > "$out"
done
