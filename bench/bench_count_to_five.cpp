// E1: the flock-of-birds count-to-five protocol (Sect. 1, 3.1-3.2).
//
// Claim reproduced: the protocol stably computes "at least 5 ones" on every
// population, and under uniform random pairing converges within
// O(n^2 log n) interactions (token coalescence is a coupon-collector-style
// process; the alert epidemic is Theta(n log n) meetings of a specific pair
// class).  We report mean convergence interactions and their ratio to
// n^2 ln n, which should stay bounded as n grows.

#include <cinttypes>

#include "bench_util.h"
#include "core/simulator.h"
#include "protocols/counting.h"

namespace {

using namespace popproto;
using namespace popproto::bench;

void run() {
    banner("E1: count-to-five (flock of birds)",
           "Convergence of the Sect. 1 protocol under uniform random pairing; the\n"
           "measured interactions / (n^2 ln n) column should stay roughly constant.");

    Table table({"n", "ones", "verdict", "mean inter.", "sd", "/(n^2 ln n)"});
    const int trials = 25;
    for (std::uint64_t n : {16ull, 32ull, 64ull, 128ull, 256ull, 512ull}) {
        for (std::uint64_t ones : {std::uint64_t{3}, std::uint64_t{5}, n / 2}) {
            if (ones > n) continue;
            const auto protocol = make_counting_protocol(5);
            const auto initial =
                CountConfiguration::from_input_counts(*protocol, {n - ones, ones});
            std::vector<double> convergence;
            bool all_correct = true;
            for (int trial = 0; trial < trials; ++trial) {
                RunOptions options;
                options.max_interactions = default_budget(n);
                options.seed = 17 * n + 101 * ones + trial;
                const RunResult result = simulate(*protocol, initial, options);
                convergence.push_back(static_cast<double>(result.last_output_change));
                const Symbol expected = ones >= 5 ? kOutputTrue : kOutputFalse;
                if (!result.consensus || *result.consensus != expected) all_correct = false;
            }
            const double scale =
                static_cast<double>(n) * static_cast<double>(n) * std::log(static_cast<double>(n));
            table.row({fmt_u(n), fmt_u(ones), all_correct ? "correct" : "WRONG",
                       fmt(mean(convergence), 0), fmt(stddev(convergence), 0),
                       fmt(mean(convergence) / scale, 4)});
        }
    }
}

}  // namespace

int main() {
    run();
    return 0;
}
