// Head-to-head of the collapsed super-step engine against the count-based
// batch engine (google-benchmark; the engine-selection evidence behind
// kAutoCollapsedThreshold in core/simulator.h).
//
// The two engines divide the workload space along the effective fraction:
//
//  * Dense phases — here the epidemic transient started at half infected,
//    where roughly half of all ordered pairs change the multiset — give the
//    batch engine nothing to skip: it pays O(|Q|) per effective interaction,
//    ~30 ns/interaction at every n.  The collapsed engine instead executes a
//    maximal collision-free run of ~0.63 sqrt(n) interactions per O(|Q|^2)
//    super-step, so its per-interaction cost *falls* like 1/sqrt(n): ~parity
//    at n = 2^10, >= 10x at n = 2^20, and growing through 2^24 (the
//    Theorem 8 scaling regime EXPERIMENTS.md sweeps).
//  * Sparse phases — the paper's 7-fevered-birds scenario — are the batch
//    engine's home turf: almost every interaction is null and geometric
//    jumps cost O(1) per *run* of nulls, which no super-step can beat.  The
//    sparse pair below documents that regime and is why kAuto keeps the
//    batch engine below the collapsed threshold.
//
// The budget for the dense sweep is n interactions, keeping every run deep
// inside the transient (full infection needs ~n ln n), so the effective
// fraction stays high for the whole measured window at every size.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <map>

#include "bench_util.h"
#include "core/batch_simulator.h"
#include "core/collapsed_simulator.h"
#include "core/simulator.h"
#include "protocols/counting.h"
#include "protocols/epidemic.h"

namespace {

using namespace popproto;

template <typename Engine>
void run_epidemic_transient(benchmark::State& state, Engine&& engine) {
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n / 2, n - n / 2});
    std::uint64_t seed = 1;
    std::uint64_t interactions = 0;
    std::uint64_t effective = 0;
    for (auto _ : state) {
        RunOptions options;
        options.max_interactions = n;  // stay inside the dense transient
        options.seed = ++seed;
        const RunResult result = engine(*protocol, initial, options);
        interactions += result.interactions;
        effective += result.effective_interactions;
        benchmark::DoNotOptimize(result.interactions);
    }
    state.counters["interactions/s"] = benchmark::Counter(
        static_cast<double>(interactions), benchmark::Counter::kIsRate);
    state.counters["effective/s"] = benchmark::Counter(
        static_cast<double>(effective), benchmark::Counter::kIsRate);
}

const auto kBatchEngine = [](const TabulatedProtocol& p, const CountConfiguration& c,
                             const RunOptions& o) { return simulate_counts(p, c, o); };
const auto kCollapsedEngine = [](const TabulatedProtocol& p, const CountConfiguration& c,
                                 const RunOptions& o) { return simulate_collapsed(p, c, o); };

void BM_EpidemicDenseCountBatch(benchmark::State& state) {
    run_epidemic_transient(state, kBatchEngine);
}
BENCHMARK(BM_EpidemicDenseCountBatch)
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Arg(1 << 16)
    ->Arg(1 << 20)
    ->Arg(1 << 24);

void BM_EpidemicDenseCollapsed(benchmark::State& state) {
    run_epidemic_transient(state, kCollapsedEngine);
}
BENCHMARK(BM_EpidemicDenseCollapsed)
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Arg(1 << 16)
    ->Arg(1 << 20)
    ->Arg(1 << 24);

// The sparse contrast: 7 fevered birds among 2^20, a fixed 4M-interaction
// budget (the bench_throughput sparse workload).  Almost every interaction
// is null; the batch engine jumps whole null runs while the collapsed
// engine still pays one super-step per ~sqrt(n) interactions, so the batch
// engine stays ahead here — the reason kAuto keeps it below
// kAutoCollapsedThreshold.
template <typename Engine>
void run_sparse_counting(benchmark::State& state, Engine&& engine) {
    const std::uint64_t n = std::uint64_t{1} << 20;
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n - 7, 7});
    std::uint64_t seed = 1;
    std::uint64_t interactions = 0;
    for (auto _ : state) {
        RunOptions options;
        options.max_interactions = 4'000'000;
        options.seed = ++seed;
        const RunResult result = engine(*protocol, initial, options);
        interactions += result.interactions;
        benchmark::DoNotOptimize(result.interactions);
    }
    state.counters["interactions/s"] = benchmark::Counter(
        static_cast<double>(interactions), benchmark::Counter::kIsRate);
}

void BM_SparseCountingCountBatch(benchmark::State& state) {
    run_sparse_counting(state, kBatchEngine);
}
BENCHMARK(BM_SparseCountingCountBatch);

void BM_SparseCountingCollapsed(benchmark::State& state) {
    run_sparse_counting(state, kCollapsedEngine);
}
BENCHMARK(BM_SparseCountingCollapsed);

// Intra-run scaling of the sharded collapsed engine: the dense epidemic
// transient again (the workload where super-steps dominate), at fixed n and
// varying RunOptions::threads.  threads = 1 is the serial engine and
// anchors the per-n baseline rate; parallel_efficiency = speedup / threads,
// so 1.0 is perfect linear scaling and 1/threads is "no faster than
// serial".  Shard work per super-step is ~0.63 sqrt(n) pair applications,
// so efficiency should rise with n (more work per fork-merge barrier) and
// it is only meaningful when the host has at least `threads` cores —
// EXPERIMENTS.md records which host recorded the committed numbers.
//
// Execution order matters: google-benchmark runs the ArgsProduct rows in
// an order that puts every threads = 1 row before any parallel row (and
// repetitions of a row are consecutive), so the serial anchor for each n is
// always recorded before its parallel rows read it.
void BM_CollapsedScaling(benchmark::State& state) {
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    const unsigned threads = static_cast<unsigned>(state.range(1));
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n / 2, n - n / 2});
    std::uint64_t seed = 1;
    std::uint64_t interactions = 0;
    const auto start = std::chrono::steady_clock::now();
    for (auto _ : state) {
        RunOptions options;
        options.max_interactions = n;  // stay inside the dense transient
        options.seed = ++seed;
        options.threads = threads;
        const RunResult result = simulate_collapsed(*protocol, initial, options);
        interactions += result.interactions;
        benchmark::DoNotOptimize(result.interactions);
    }
    const double elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    const double rate = elapsed > 0.0 ? static_cast<double>(interactions) / elapsed : 0.0;

    // Serial anchor per population size (single-threaded registration-order
    // execution makes the static safe; repetitions keep the max so the
    // anchor is the serial engine's best showing).
    static std::map<std::uint64_t, double> serial_rate;
    if (threads == 1) {
        const auto it = serial_rate.find(n);
        if (it == serial_rate.end() || rate > it->second) serial_rate[n] = rate;
    }
    state.counters["interactions/s"] = benchmark::Counter(
        static_cast<double>(interactions), benchmark::Counter::kIsRate);
    const auto anchor = serial_rate.find(n);
    if (anchor != serial_rate.end() && anchor->second > 0.0) {
        state.counters["parallel_efficiency"] =
            rate / (anchor->second * static_cast<double>(threads));
    }
}
BENCHMARK(BM_CollapsedScaling)
    ->ArgsProduct({{1 << 20, 1 << 24, 1 << 28}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

POPPROTO_BENCHMARK_MAIN()
