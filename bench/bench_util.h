// Shared helpers for the experiment harnesses.
//
// Each bench binary reproduces one quantitative claim of the paper
// (DESIGN.md, per-experiment index) and prints a fixed-width table of
// measured values next to the paper's prediction.  Binaries run with no
// arguments and bounded wall time so `for b in build/bench/*; do $b; done`
// regenerates every experiment.

#ifndef POPPROTO_BENCH_BENCH_UTIL_H
#define POPPROTO_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

namespace popproto::bench {

/// Prints the experiment banner.
inline void banner(const std::string& experiment, const std::string& claim) {
    std::printf("\n=== %s ===\n%s\n\n", experiment.c_str(), claim.c_str());
}

/// Fixed-width table writer: header once, then one row per call.
class Table {
public:
    explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
        for (const std::string& column : columns_) std::printf("%16s", column.c_str());
        std::printf("\n");
        for (std::size_t i = 0; i < columns_.size(); ++i) std::printf("%16s", "----------");
        std::printf("\n");
    }

    void row(const std::vector<std::string>& cells) {
        for (const std::string& cell : cells) std::printf("%16s", cell.c_str());
        std::printf("\n");
    }

private:
    std::vector<std::string> columns_;
};

inline std::string fmt(double value, int precision = 3) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

inline std::string fmt_u(std::uint64_t value) { return std::to_string(value); }

inline double mean(const std::vector<double>& values) {
    if (values.empty()) return 0.0;
    return std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
}

inline double stddev(const std::vector<double>& values) {
    if (values.size() < 2) return 0.0;
    const double m = mean(values);
    double sum = 0.0;
    for (double v : values) sum += (v - m) * (v - m);
    return std::sqrt(sum / static_cast<double>(values.size() - 1));
}

}  // namespace popproto::bench

/// Drop-in replacement for BENCHMARK_MAIN() in the google-benchmark suites
/// (the including .cpp must include <benchmark/benchmark.h> first).  It
/// stamps the *binary's* build type into the JSON context as
/// "popproto_build_type" before running.  google-benchmark's own
/// "library_build_type" describes the distro-packaged *library* — Debian
/// ships it as a debug build, so that key says "debug" even for a -O3
/// binary — and bench/run_benches.sh --compare trusts our key over it when
/// refusing debug baselines.  "popproto_lto" records whether the toolchain
/// applied interprocedural optimization (CMakeLists.txt sets POPPROTO_LTO
/// on Release builds when supported), so a baseline records the exact
/// optimization regime it was measured under.
#ifdef NDEBUG
#define POPPROTO_BENCH_BUILD_TYPE "release"
#else
#define POPPROTO_BENCH_BUILD_TYPE "debug"
#endif
#ifdef POPPROTO_LTO
#define POPPROTO_BENCH_LTO "on"
#else
#define POPPROTO_BENCH_LTO "off"
#endif

#define POPPROTO_BENCHMARK_MAIN()                                              \
    int main(int argc, char** argv) {                                          \
        benchmark::AddCustomContext("popproto_build_type",                     \
                                    POPPROTO_BENCH_BUILD_TYPE);                \
        benchmark::AddCustomContext("popproto_lto", POPPROTO_BENCH_LTO);       \
        benchmark::Initialize(&argc, argv);                                    \
        if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;      \
        benchmark::RunSpecifiedBenchmarks();                                   \
        benchmark::Shutdown();                                                 \
        return 0;                                                              \
    }

#endif  // POPPROTO_BENCH_BENCH_UTIL_H
