// Microbenchmarks for the service layer (src/service): session churn
// through the full registry (submit -> quanta -> terminal), the slicing
// overhead a quantum grid adds over a direct run_simulation call, the
// checkpoint spill/fault round trip behind the LRU evictor, and the wire
// dispatch path.  Recorded as BENCH_bench_service.json by
// bench/run_benches.sh; EXPERIMENTS.md quotes the sustained-throughput
// numbers next to the daemon-level measurements from
// scripts/check_service.py.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/batch_simulator.h"
#include "core/run_loop.h"
#include "core/simulator.h"
#include "service/checkpoint_store.h"
#include "service/registry.h"
#include "service/session.h"
#include "service/wire.h"

namespace {

using popproto::RunCheckpoint;
using popproto::RunOptions;
using popproto::RunResult;
using popproto::service::CheckpointStore;
using popproto::service::RegistryOptions;
using popproto::service::RunRegistry;
using popproto::service::SessionSpec;
using popproto::service::SessionStatus;

std::string bench_spill_dir(const std::string& name) {
    const auto path = std::filesystem::temp_directory_path() / ("popproto_bench_" + name);
    std::filesystem::remove_all(path);
    return path.string();
}

/// Submit -> terminal for `sessions` tiny runs per iteration: the session
/// lifecycle cost (validation, scheduling, quanta, state transitions)
/// dominates, not the simulation itself.  items_processed counts sessions,
/// so the report's items/s is sustained runs per second.
void BM_SessionChurn(benchmark::State& state) {
    const int sessions = static_cast<int>(state.range(0));
    RegistryOptions options;
    options.workers = 4;
    options.spill_dir = bench_spill_dir("churn");
    RunRegistry registry(options);

    SessionSpec spec;
    spec.protocol = "epidemic";
    spec.counts = {63, 1};
    spec.engine = "agent";

    std::uint64_t seed = 1;
    for (auto _ : state) {
        for (int i = 0; i < sessions; ++i) {
            spec.seed = seed++;
            registry.submit(spec);
        }
        registry.wait_idle();
    }
    state.SetItemsProcessed(state.iterations() * sessions);
    std::filesystem::remove_all(options.spill_dir);
}
BENCHMARK(BM_SessionChurn)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond)->UseRealTime();

SessionSpec overhead_spec() {
    // Epidemic with a budget below its ~n ln n convergence point: the run
    // is budget-bound, so every measurement executes the same fixed number
    // of interactions (outputs keep changing mid-epidemic, which keeps the
    // stability heuristic from stopping the run early).
    SessionSpec spec;
    spec.protocol = "epidemic";
    spec.counts = {65535, 1};
    spec.seed = 17;
    spec.engine = "batch";
    spec.budget = std::uint64_t{1} << 19;
    return spec;
}

/// Baseline: the same workload as BM_RegistrySlicedRun in one direct
/// run_simulation call.  items/s is interactions per second; the gap to
/// the sliced run is the price of the quantum grid.
void BM_DirectRun(benchmark::State& state) {
    const SessionSpec spec = overhead_spec();
    const auto protocol = popproto::service::build_protocol(spec);
    const auto initial = popproto::service::build_initial(*protocol, spec);
    RunOptions options;
    options.seed = spec.seed;
    options.max_interactions = spec.budget;
    options.engine = popproto::service::parse_engine_name(spec.engine);
    for (auto _ : state) {
        const RunResult result = popproto::run_simulation(*protocol, initial, options);
        benchmark::DoNotOptimize(result.interactions);
    }
    state.SetItemsProcessed(state.iterations() * spec.budget);
}
BENCHMARK(BM_DirectRun)->Unit(benchmark::kMillisecond)->UseRealTime();

/// The identical workload through the registry, sliced into
/// `state.range(0)`-interaction quanta (checkpoint save/restore and a
/// scheduler round trip at every boundary).
void BM_RegistrySlicedRun(benchmark::State& state) {
    RegistryOptions options;
    options.workers = 1;
    options.spill_dir = bench_spill_dir("sliced");
    RunRegistry registry(options);

    SessionSpec spec = overhead_spec();
    spec.quantum = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        ++spec.seed;  // fresh session each iteration, same workload shape
        registry.submit(spec);
        registry.wait_idle();
    }
    state.SetItemsProcessed(state.iterations() * spec.budget);
    std::filesystem::remove_all(options.spill_dir);
}
BENCHMARK(BM_RegistrySlicedRun)
    ->Arg(1 << 16)
    ->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The evictor's spill/fault round trip: atomically write a 2^20-state
/// count checkpoint, read it back, delete it.  items/s is round trips per
/// second; multiply by the checkpoint size for disk bandwidth.
void BM_CheckpointSpillFaultRoundTrip(benchmark::State& state) {
    const std::string dir = bench_spill_dir("spill");
    CheckpointStore store(dir);
    RunCheckpoint checkpoint;
    checkpoint.engine = popproto::ObservedEngine::kCountBatch;
    checkpoint.population = std::uint64_t{1} << 20;
    checkpoint.num_states = 64;
    checkpoint.rng.words = {1, 2, 3, 4};
    checkpoint.interactions = 123456789;
    checkpoint.counts.assign(64, (std::uint64_t{1} << 20) / 64);
    for (auto _ : state) {
        store.save_checkpoint("s-1", checkpoint);
        const RunCheckpoint loaded = store.load_checkpoint("s-1");
        benchmark::DoNotOptimize(loaded.interactions);
        store.remove("s-1");
    }
    state.SetItemsProcessed(state.iterations());
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CheckpointSpillFaultRoundTrip);

/// The wire layer without sockets: parse a status request, dispatch it
/// against a registry holding one terminal session, serialize the
/// response.  items/s bounds the command throughput one connection thread
/// can sustain.
void BM_WireStatusDispatch(benchmark::State& state) {
    RegistryOptions options;
    options.spill_dir = bench_spill_dir("wire");
    RunRegistry registry(options);
    SessionSpec spec;
    spec.protocol = "epidemic";
    spec.counts = {63, 1};
    spec.engine = "agent";
    const std::string id = registry.submit(spec);
    registry.wait_idle();

    const std::string line = "{\"cmd\":\"status\",\"session\":\"" + id + "\"}";
    for (auto _ : state) {
        const auto response =
            popproto::service::dispatch_request(registry, popproto::service::parse_request(line));
        benchmark::DoNotOptimize(response);
    }
    state.SetItemsProcessed(state.iterations());
    std::filesystem::remove_all(options.spill_dir);
}
BENCHMARK(BM_WireStatusDispatch);

}  // namespace

POPPROTO_BENCHMARK_MAIN()
