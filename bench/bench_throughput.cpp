// Microbenchmarks of the simulation substrate (google-benchmark).
//
// Not a paper claim - this tracks the raw cost of the hot loops
// (interaction application, urn draws, graph-edge activation) that every
// experiment above depends on.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/batch_simulator.h"
#include "core/simulator.h"
#include "graphs/graph_simulation.h"
#include "graphs/interaction_graph.h"
#include "presburger/atom_protocols.h"
#include "protocols/counting.h"
#include "randomized/urn.h"

namespace {

using namespace popproto;

void BM_SimulateCounting(benchmark::State& state) {
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n / 2, n - n / 2});
    std::uint64_t seed = 1;
    std::uint64_t interactions = 0;
    for (auto _ : state) {
        RunOptions options;
        options.max_interactions = 200000;
        options.silence_check_period = 1u << 30;  // measure the raw loop
        options.seed = ++seed;
        const RunResult result = simulate(*protocol, initial, options);
        interactions += result.interactions;
        benchmark::DoNotOptimize(result.interactions);
    }
    state.counters["interactions/s"] = benchmark::Counter(
        static_cast<double>(interactions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateCounting)->Arg(256)->Arg(4096);

// Head-to-head comparison of the agent-array reference loop and the
// count-based batch engine (batch_simulator.h) on the same workload:
// count-to-five, a fixed 4M-interaction budget, the default silence
// stopping rule, and the interactions/s counter as the figure of merit.
//
// Two input regimes bracket the engine's behaviour.  "Dense" starts
// half-and-half, so the alert epidemic keeps the effective fraction near
// 1/4 and the batch engine merely matches the reference.  "Sparse" is the
// paper's flock-of-birds scenario - 7 fevered birds among n - where almost
// every interaction is null (the Theorem 8 Theta(n^2 log n) tail); the
// batch engine jumps the null runs geometrically and pulls ahead by orders
// of magnitude as n grows.

constexpr std::uint64_t kHeadToHeadBudget = 4'000'000;

template <typename Engine>
void run_counting_head_to_head(benchmark::State& state, std::uint64_t ones, Engine&& engine) {
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n - ones, ones});
    std::uint64_t seed = 1;
    std::uint64_t interactions = 0;
    std::uint64_t effective = 0;
    for (auto _ : state) {
        RunOptions options;
        options.max_interactions = kHeadToHeadBudget;
        options.seed = ++seed;
        const RunResult result = engine(*protocol, initial, options);
        interactions += result.interactions;
        effective += result.effective_interactions;
        benchmark::DoNotOptimize(result.interactions);
    }
    state.counters["interactions/s"] = benchmark::Counter(
        static_cast<double>(interactions), benchmark::Counter::kIsRate);
    state.counters["effective/s"] = benchmark::Counter(
        static_cast<double>(effective), benchmark::Counter::kIsRate);
}

const auto kAgentArrayEngine = [](const TabulatedProtocol& p, const CountConfiguration& c,
                                  const RunOptions& o) { return simulate(p, c, o); };
const auto kBatchEngine = [](const TabulatedProtocol& p, const CountConfiguration& c,
                             const RunOptions& o) { return simulate_counts(p, c, o); };

void BM_CountingAgentArrayDense(benchmark::State& state) {
    run_counting_head_to_head(state, static_cast<std::uint64_t>(state.range(0)) / 2,
                              kAgentArrayEngine);
}
BENCHMARK(BM_CountingAgentArrayDense)->Arg(256)->Arg(4096)->Arg(65536)->Arg(1048576);

void BM_CountingBatchDense(benchmark::State& state) {
    run_counting_head_to_head(state, static_cast<std::uint64_t>(state.range(0)) / 2,
                              kBatchEngine);
}
BENCHMARK(BM_CountingBatchDense)->Arg(256)->Arg(4096)->Arg(65536)->Arg(1048576);

void BM_CountingAgentArraySparse(benchmark::State& state) {
    run_counting_head_to_head(state, 7, kAgentArrayEngine);
}
BENCHMARK(BM_CountingAgentArraySparse)->Arg(256)->Arg(4096)->Arg(65536)->Arg(1048576);

void BM_CountingBatchSparse(benchmark::State& state) {
    run_counting_head_to_head(state, 7, kBatchEngine);
}
BENCHMARK(BM_CountingBatchSparse)->Arg(256)->Arg(4096)->Arg(65536)->Arg(1048576);

// A full default_budget-scale convergence run of the sparse scenario at
// n = 2^20: ~10^13 scheduled interactions to silence, which the
// agent-array loop cannot finish in reasonable time (days at its measured
// rate) but the batch engine completes per run in well under a second by
// skipping the null tail.
void BM_BatchCountingFullConvergence(benchmark::State& state) {
    const std::uint64_t n = 1u << 20;
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n - 7, 7});
    std::uint64_t seed = 40;
    std::uint64_t interactions = 0;
    std::uint64_t silent_runs = 0;
    for (auto _ : state) {
        RunOptions options;
        options.max_interactions = default_budget(n);
        options.seed = ++seed;
        const RunResult result = simulate_counts(*protocol, initial, options);
        interactions += result.interactions;
        if (result.stop_reason == StopReason::kSilent) ++silent_runs;
        benchmark::DoNotOptimize(result.interactions);
    }
    state.counters["interactions/s"] = benchmark::Counter(
        static_cast<double>(interactions), benchmark::Counter::kIsRate);
    state.counters["silent_runs"] = benchmark::Counter(static_cast<double>(silent_runs));
}
BENCHMARK(BM_BatchCountingFullConvergence);

void BM_SimulateMajorityProtocol(benchmark::State& state) {
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    const auto protocol = make_threshold_protocol({1, -1}, 0);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n / 2, n - n / 2});
    std::uint64_t seed = 100;
    std::uint64_t interactions = 0;
    for (auto _ : state) {
        RunOptions options;
        options.max_interactions = 200000;
        options.silence_check_period = 1u << 30;
        options.seed = ++seed;
        const RunResult result = simulate(*protocol, initial, options);
        interactions += result.interactions;
    }
    state.counters["interactions/s"] = benchmark::Counter(
        static_cast<double>(interactions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateMajorityProtocol)->Arg(1024);

void BM_GraphSimulatorOnRing(benchmark::State& state) {
    const std::uint32_t n = 64;
    const auto base = make_counting_protocol(3);
    const auto sim = make_graph_simulation_protocol(*base);
    const InteractionGraph ring = InteractionGraph::ring(n);
    std::vector<Symbol> inputs(n, kInputZero);
    inputs[0] = inputs[1] = inputs[2] = kInputOne;
    std::uint64_t seed = 3;
    std::uint64_t interactions = 0;
    for (auto _ : state) {
        RunOptions options;
        options.max_interactions = 200000;
        options.seed = ++seed;
        const GraphRunResult result = simulate_on_graph(*sim, ring, inputs, options);
        interactions += result.interactions;
    }
    state.counters["interactions/s"] = benchmark::Counter(
        static_cast<double>(interactions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GraphSimulatorOnRing);

void BM_UrnDraws(benchmark::State& state) {
    Rng rng(5);
    std::uint64_t draws = 0;
    for (auto _ : state) {
        const UrnOutcome outcome = sample_urn(64, 4, 3, rng);
        draws += outcome.draws;
        benchmark::DoNotOptimize(outcome.lost);
    }
    state.counters["draws/s"] =
        benchmark::Counter(static_cast<double>(draws), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_UrnDraws);

}  // namespace

POPPROTO_BENCHMARK_MAIN()
