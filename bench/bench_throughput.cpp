// Microbenchmarks of the simulation substrate (google-benchmark).
//
// Not a paper claim - this tracks the raw cost of the hot loops
// (interaction application, urn draws, graph-edge activation) that every
// experiment above depends on.

#include <benchmark/benchmark.h>

#include "core/simulator.h"
#include "graphs/graph_simulation.h"
#include "graphs/interaction_graph.h"
#include "presburger/atom_protocols.h"
#include "protocols/counting.h"
#include "randomized/urn.h"

namespace {

using namespace popproto;

void BM_SimulateCounting(benchmark::State& state) {
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n / 2, n - n / 2});
    std::uint64_t seed = 1;
    std::uint64_t interactions = 0;
    for (auto _ : state) {
        RunOptions options;
        options.max_interactions = 200000;
        options.silence_check_period = 1u << 30;  // measure the raw loop
        options.seed = ++seed;
        const RunResult result = simulate(*protocol, initial, options);
        interactions += result.interactions;
        benchmark::DoNotOptimize(result.interactions);
    }
    state.counters["interactions/s"] = benchmark::Counter(
        static_cast<double>(interactions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateCounting)->Arg(256)->Arg(4096);

void BM_SimulateMajorityProtocol(benchmark::State& state) {
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    const auto protocol = make_threshold_protocol({1, -1}, 0);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n / 2, n - n / 2});
    std::uint64_t seed = 100;
    std::uint64_t interactions = 0;
    for (auto _ : state) {
        RunOptions options;
        options.max_interactions = 200000;
        options.silence_check_period = 1u << 30;
        options.seed = ++seed;
        const RunResult result = simulate(*protocol, initial, options);
        interactions += result.interactions;
    }
    state.counters["interactions/s"] = benchmark::Counter(
        static_cast<double>(interactions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateMajorityProtocol)->Arg(1024);

void BM_GraphSimulatorOnRing(benchmark::State& state) {
    const std::uint32_t n = 64;
    const auto base = make_counting_protocol(3);
    const auto sim = make_graph_simulation_protocol(*base);
    const InteractionGraph ring = InteractionGraph::ring(n);
    std::vector<Symbol> inputs(n, kInputZero);
    inputs[0] = inputs[1] = inputs[2] = kInputOne;
    std::uint64_t seed = 3;
    std::uint64_t interactions = 0;
    for (auto _ : state) {
        RunOptions options;
        options.max_interactions = 200000;
        options.seed = ++seed;
        const GraphRunResult result = simulate_on_graph(*sim, ring, inputs, options);
        interactions += result.interactions;
    }
    state.counters["interactions/s"] = benchmark::Counter(
        static_cast<double>(interactions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GraphSimulatorOnRing);

void BM_UrnDraws(benchmark::State& state) {
    Rng rng(5);
    std::uint64_t draws = 0;
    for (auto _ : state) {
        const UrnOutcome outcome = sample_urn(64, 4, 3, rng);
        draws += outcome.draws;
        benchmark::DoNotOptimize(outcome.lost);
    }
    state.counters["draws/s"] =
        benchmark::Counter(static_cast<double>(draws), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_UrnDraws);

}  // namespace

BENCHMARK_MAIN();
