// E6: leader-driven counter-machine simulation (Sect. 6.1, Theorem 9).
//
// Claims reproduced on the multiply-by-b program (the paper's push
// operation): per-run zero-test error counts scale like n^-k, and the total
// interaction cost scales like O(n^2 log n + n^{k+1}) (the n^{k+1} term is
// the terminal zero verdicts).  We report empirical error rates and
// interaction totals across n and k.

#include "bench_util.h"
#include "machines/examples.h"
#include "randomized/population_machine.h"

namespace {

using namespace popproto;
using namespace popproto::bench;

void run() {
    banner("E6: population counter machine (multiply by 3)",
           "Zero-test error rate should fall like n^-k; interactions grow like\n"
           "O(n^2 log n + n^{k+1}).  'bad runs' = runs with any erroneous zero verdict.");

    Table table({"n", "k", "runs", "bad runs", "err/test", "mean inter.", "n^{k+1}"});
    const CounterProgram program = make_multiply_program(3);
    for (std::uint64_t n : {12ull, 24ull, 48ull}) {
        for (std::uint32_t k : {1u, 2u, 3u}) {
            const int trials = 60;
            int bad_runs = 0;
            std::uint64_t tests = 0;
            std::uint64_t errors = 0;
            std::vector<double> interactions;
            for (int trial = 0; trial < trials; ++trial) {
                PopulationMachineOptions options;
                options.timer_parameter = k;
                options.share_capacity = 4;
                options.max_interactions = 400ull * n * n +
                                           40ull * n * n * n * (k >= 2 ? n : 1) *
                                               (k >= 3 ? n : 1);
                options.seed = 1000 * n + 100 * k + trial;
                const PopulationMachineResult result =
                    run_population_counter_machine(program, {5, 0}, n, options);
                if (result.zero_test_errors > 0) ++bad_runs;
                tests += result.zero_tests;
                errors += result.zero_test_errors;
                if (result.halted)
                    interactions.push_back(static_cast<double>(result.interactions));
            }
            const double n_pow =
                std::pow(static_cast<double>(n), static_cast<double>(k) + 1.0);
            table.row({fmt_u(n), fmt_u(k), fmt_u(trials), fmt_u(bad_runs),
                       fmt(tests ? static_cast<double>(errors) / tests : 0.0, 6),
                       fmt(mean(interactions), 0), fmt(n_pow, 0)});
        }
    }
}

}  // namespace

int main() {
    run();
    return 0;
}
