// E11 (extension): weighted pair sampling, the Sect. 8 open direction.
//
// "One idea is weighted sampling, in which population members are sampled
// according to their weights ...  We conjecture that with reasonable
// restrictions on the weights, weighted sampling yields the same power as
// uniform sampling."  We probe the conjecture on the Lemma 5 majority
// protocol: correctness at every weight spread, with a bounded convergence
// slowdown relative to uniform sampling.

#include "bench_util.h"
#include "core/simulator.h"
#include "presburger/atom_protocols.h"

namespace {

using namespace popproto;
using namespace popproto::bench;

void run() {
    banner("E11 (extension): weighted sampling conjecture (Sect. 8)",
           "Majority (x0 < x1) under pair sampling proportional to w_i * w_j with\n"
           "weights cycling through [1, spread].  The conjecture predicts 'correct'\n"
           "everywhere; 'slowdown' is convergence relative to uniform weights.");

    const auto protocol = make_threshold_protocol({1, -1}, 0);
    const std::uint64_t n = 128;
    const std::uint64_t zeros = 60;
    const std::uint64_t ones = 68;

    std::vector<Symbol> input_symbols(zeros, 0);
    input_symbols.insert(input_symbols.end(), ones, 1);
    const auto initial = AgentConfiguration::from_inputs(*protocol, input_symbols);

    const int trials = 15;
    Table table({"spread", "verdict", "mean conv.", "slowdown"});
    double uniform_mean = 0.0;
    for (double spread : {1.0, 2.0, 4.0, 16.0, 64.0}) {
        std::vector<double> weights(n);
        for (std::size_t i = 0; i < n; ++i)
            weights[i] = 1.0 + (spread - 1.0) * static_cast<double>(i % 11) / 10.0;

        std::vector<double> convergence;
        bool all_correct = true;
        for (int trial = 0; trial < trials; ++trial) {
            RunOptions options;
            options.max_interactions = default_budget(n, 1024.0);
            options.seed = 300 + trial;
            const RunResult result = simulate_weighted(*protocol, initial, weights, options);
            convergence.push_back(static_cast<double>(result.last_output_change));
            if (!result.consensus || *result.consensus != kOutputTrue) all_correct = false;
        }
        const double m = mean(convergence);
        if (spread == 1.0) uniform_mean = m;
        table.row({fmt(spread, 0), all_correct ? "correct" : "WRONG", fmt(m, 0),
                   fmt(m / uniform_mean, 2)});
    }
}

}  // namespace

int main() {
    run();
    return 0;
}
