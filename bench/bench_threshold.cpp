// E4: the threshold protocol converges in O(n^2 log n) interactions even
// with mixed-sign inputs (proof of Theorem 8).
//
// The delicate case in the paper's analysis is a leader "maxed out" at +-s
// that must digest counts of the opposite sign; the harmonic-sum argument
// still gives O(n^2 log n).  We measure majority (x0 < x1) on balanced and
// skewed inputs, plus a two-sided signed instance, and report the ratio to
// n^2 ln n.

#include "bench_util.h"
#include "core/simulator.h"
#include "presburger/atom_protocols.h"

namespace {

using namespace popproto;
using namespace popproto::bench;

struct Workload {
    const char* name;
    std::vector<std::int64_t> coefficients;
    std::int64_t constant;
    // Given n, produce input symbol counts.
    std::vector<std::uint64_t> (*counts)(std::uint64_t n);
};

std::vector<std::uint64_t> balanced(std::uint64_t n) { return {n / 2 + 1, n - n / 2 - 1}; }
std::vector<std::uint64_t> skewed(std::uint64_t n) { return {n / 10, n - n / 10}; }
std::vector<std::uint64_t> signed_mix(std::uint64_t n) { return {n / 3, n - n / 3}; }

void run() {
    banner("E4: threshold protocol convergence (mixed signs)",
           "Theorem 8 proof: the threshold protocol needs O(n^2 log n) interactions\n"
           "even when positive and negative counts must cancel through the leader.");

    const std::vector<Workload> workloads = {
        {"majority balanced", {1, -1}, 0, balanced},
        {"majority skewed", {1, -1}, 0, skewed},
        {"2x0-3x1<1 mixed", {2, -3}, 1, signed_mix},
    };

    Table table({"workload", "n", "verdict", "mean inter.", "/(n^2 ln n)"});
    const int trials = 15;
    for (const Workload& workload : workloads) {
        for (std::uint64_t n : {16ull, 64ull, 128ull, 256ull, 512ull}) {
            const auto protocol =
                make_threshold_protocol(workload.coefficients, workload.constant);
            const auto counts = workload.counts(n);
            const auto initial = CountConfiguration::from_input_counts(*protocol, counts);
            std::int64_t sum = 0;
            for (std::size_t i = 0; i < counts.size(); ++i)
                sum += workload.coefficients[i] * static_cast<std::int64_t>(counts[i]);
            const Symbol want = sum < workload.constant ? kOutputTrue : kOutputFalse;

            std::vector<double> convergence;
            bool all_correct = true;
            for (int trial = 0; trial < trials; ++trial) {
                RunOptions options;
                options.max_interactions = default_budget(n, 128.0);
                options.seed = 13 * n + trial;
                const RunResult result = simulate(*protocol, initial, options);
                convergence.push_back(static_cast<double>(result.last_output_change));
                if (!result.consensus || *result.consensus != want) all_correct = false;
            }
            const double scale = static_cast<double>(n) * static_cast<double>(n) *
                                 std::log(static_cast<double>(n));
            table.row({workload.name, fmt_u(n), all_correct ? "correct" : "WRONG",
                       fmt(mean(convergence), 0), fmt(mean(convergence) / scale, 4)});
        }
    }
}

}  // namespace

int main() {
    run();
    return 0;
}
