// E10: the Theorem 6 machinery executed - stable computation is decided by
// reachability over multiset configurations (|Q| counters of log n bits).
//
// We measure how the reachable configuration count and the verification
// time grow with n for three protocols.  The counts grow polynomially in n
// (with degree at most |Q| - 1), which is exactly why the NL upper bound of
// Theorem 6 goes through.

#include <chrono>

#include "analysis/stable_computation.h"
#include "bench_util.h"
#include "presburger/atom_protocols.h"
#include "protocols/counting.h"
#include "protocols/leader_election.h"

namespace {

using namespace popproto;
using namespace popproto::bench;

void measure(const char* name, const TabulatedProtocol& protocol,
             const CountConfiguration& initial, Table& table, std::uint64_t n) {
    const auto start = std::chrono::steady_clock::now();
    const StableComputationResult result = analyze_stable_computation(protocol, initial, 1u << 22);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(stop - start).count() / 1000.0;
    table.row({name, fmt_u(protocol.num_states()), fmt_u(n),
               fmt_u(result.reachable_configurations),
               result.always_converges ? "yes" : "no", fmt(ms, 2)});
}

void run() {
    banner("E10: exact stable-computation verification (Theorem 6 machinery)",
           "Reachable multiset configurations and wall time of the exact analyzer;\n"
           "configuration counts grow polynomially in n, witnessing the NL bound.");

    Table table({"protocol", "|Q|", "n", "configs", "converges", "ms"});

    const auto leader = make_leader_election_protocol();
    for (std::uint64_t n : {8ull, 64ull, 512ull}) {
        const auto initial = CountConfiguration::from_input_counts(*leader, {n});
        measure("leader election", *leader, initial, table, n);
    }

    const auto counting = make_counting_protocol(5);
    for (std::uint64_t n : {6ull, 10ull, 14ull, 18ull}) {
        const auto initial =
            CountConfiguration::from_input_counts(*counting, {n / 2, n - n / 2});
        measure("count-to-5", *counting, initial, table, n);
    }

    const auto majority = make_threshold_protocol({1, -1}, 0);
    for (std::uint64_t n : {4ull, 6ull, 8ull}) {
        const auto initial =
            CountConfiguration::from_input_counts(*majority, {n / 2, n - n / 2});
        measure("majority (L5)", *majority, initial, table, n);
    }
}

}  // namespace

int main() {
    run();
    return 0;
}
