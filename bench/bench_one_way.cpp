// E12 (extension): one-way communication (Sect. 8).
//
// The paper notes that restricting delta to change only the responder
// "appears to restrict the class of stably computable predicates severely",
// while threshold-k remains computable.  We compare the one-way level
// protocol against the standard two-way counting protocol: both must be
// correct; the table quantifies the convergence cost of giving up two-way
// exchange (the one-way protocol needs Theta(k) "ladder" meetings of
// equal-level agents instead of one token coalescence pass).

#include "bench_util.h"
#include "core/simulator.h"
#include "protocols/counting.h"
#include "protocols/one_way.h"

namespace {

using namespace popproto;
using namespace popproto::bench;

void run() {
    banner("E12 (extension): one-way vs two-way threshold protocols (Sect. 8)",
           "Threshold k = 3 with exactly 4 ones: convergence of the responder-only\n"
           "level protocol vs the standard two-way counting protocol.");

    Table table({"n", "model", "verdict", "mean inter.", "one-way/two-way"});
    const std::uint32_t threshold = 3;
    const std::uint64_t ones = 4;
    const int trials = 20;

    for (std::uint64_t n : {16ull, 32ull, 64ull, 128ull, 256ull}) {
        double two_way_mean = 0.0;
        for (const bool one_way : {false, true}) {
            const auto protocol = one_way ? make_one_way_counting_protocol(threshold)
                                          : make_counting_protocol(threshold);
            const auto initial =
                CountConfiguration::from_input_counts(*protocol, {n - ones, ones});
            std::vector<double> convergence;
            bool all_correct = true;
            for (int trial = 0; trial < trials; ++trial) {
                RunOptions options;
                options.max_interactions = default_budget(n, 256.0);
                options.seed = 7 * n + trial + (one_way ? 1000 : 0);
                const RunResult result = simulate(*protocol, initial, options);
                convergence.push_back(static_cast<double>(result.last_output_change));
                if (!result.consensus || *result.consensus != kOutputTrue)
                    all_correct = false;
            }
            const double m = mean(convergence);
            if (!one_way) two_way_mean = m;
            table.row({fmt_u(n), one_way ? "one-way" : "two-way",
                       all_correct ? "correct" : "WRONG", fmt(m, 0),
                       one_way ? fmt(m / two_way_mean, 2) : std::string("1.00")});
        }
    }
}

}  // namespace

int main() {
    run();
    return 0;
}
