// E9: the Theorem 5 compiler end to end, with the Theorem 8 O(k_psi n^2
// log n) convergence bound.
//
// Workloads: the paper's own examples - majority, parity, the "at least 5%
// fevered birds" predicate (20 x1 >= x0 + x1), and the Sect. 4.3 integer
// convention formula y1 - 2 y2 = 0 (mod 3) over its 5-token alphabet.

#include "bench_util.h"
#include "core/simulator.h"
#include "presburger/compiler.h"

namespace {

using namespace popproto;
using namespace popproto::bench;

struct Workload {
    std::string name;
    std::unique_ptr<TabulatedProtocol> protocol;
    Formula formula;
    std::vector<std::uint64_t> (*counts)(std::uint64_t n);
};

std::vector<std::uint64_t> near_majority(std::uint64_t n) { return {n / 2, n - n / 2}; }
std::vector<std::uint64_t> all_ones(std::uint64_t n) { return {0, n}; }
std::vector<std::uint64_t> five_percent(std::uint64_t n) {
    const std::uint64_t fevered = n / 20 + 1;
    return {n - fevered, fevered};
}
std::vector<std::uint64_t> token_mix(std::uint64_t n) {
    // Tokens (0,0), (1,0), (-1,0), (0,1), (0,-1): mostly +1's on y1 plus a
    // few y2 increments.
    const std::uint64_t q = n / 5;
    return {n - 4 * q, q, q, q, q};
}

void run() {
    banner("E9: compiled Presburger predicates (Theorems 5 and 8)",
           "Compiled protocols must reach the correct consensus; convergence should\n"
           "scale as O(k_psi n^2 log n).  States column shows the compiled |Q|.");

    std::vector<Workload> workloads;
    {
        const Formula majority = Formula::threshold({1, -1}, 0);
        workloads.push_back({"majority x0<x1", compile_formula(majority), majority,
                             near_majority});
    }
    {
        const Formula parity = Formula::congruence({0, 1}, 0, 2);
        workloads.push_back({"parity of x1", compile_formula(parity), parity, all_ones});
    }
    {
        const Formula fever = Formula::at_least({-1, 19}, 0);
        workloads.push_back({"fever >= 5%", compile_formula(fever), fever, five_percent});
    }
    {
        const Formula phi = Formula::congruence({1, -2}, 0, 3);
        const std::vector<std::vector<std::int64_t>> tokens = {
            {0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}};
        workloads.push_back({"y1-2y2=0 mod 3", compile_integer_convention(phi, tokens),
                             phi.substitute_tokens(tokens), token_mix});
    }

    Table table({"workload", "states", "n", "verdict", "mean inter.", "/(n^2 ln n)"});
    const int trials = 12;
    for (const Workload& workload : workloads) {
        for (std::uint64_t n : {32ull, 64ull, 128ull, 256ull}) {
            const auto counts = workload.counts(n);
            const auto initial =
                CountConfiguration::from_input_counts(*workload.protocol, counts);
            const bool expected = workload.formula.evaluate(
                std::vector<std::int64_t>(counts.begin(), counts.end()));
            const Symbol want = expected ? kOutputTrue : kOutputFalse;

            std::vector<double> convergence;
            bool all_correct = true;
            for (int trial = 0; trial < trials; ++trial) {
                RunOptions options;
                options.max_interactions = default_budget(n, 128.0);
                options.seed = 5 * n + trial;
                const RunResult result = simulate(*workload.protocol, initial, options);
                convergence.push_back(static_cast<double>(result.last_output_change));
                if (!result.consensus || *result.consensus != want) all_correct = false;
            }
            const double scale = static_cast<double>(n) * static_cast<double>(n) *
                                 std::log(static_cast<double>(n));
            table.row({workload.name, fmt_u(workload.protocol->num_states()), fmt_u(n),
                       all_correct ? "correct" : "WRONG", fmt(mean(convergence), 0),
                       fmt(mean(convergence) / scale, 4)});
        }
    }
}

}  // namespace

int main() {
    run();
    return 0;
}
