// Observation-overhead microbenchmarks (google-benchmark).
//
// The observer hook (core/observer.h) promises that an unobserved run —
// observer == nullptr, the default — costs one predicted-not-taken branch
// per interaction and nothing else.  This suite pins that promise down
// against BENCH_bench_throughput.json across PRs, and prices the actual
// observers so experiment authors can budget them:
//
//  * *Unobserved: the hot loops exactly as bench_throughput runs them
//    (the <2%-overhead acceptance bar compares these against the
//    pre-instrumentation numbers).
//  * *NoopObserver: a base RunObserver with every callback a no-op and no
//    snapshot schedule — the pure cost of virtual dispatch on the
//    non-snapshot events (output changes, null runs, silence checks).
//  * *Traced: a TraceRecorder with a fixed-period snapshot schedule — what
//    a trajectory experiment actually pays.
//  * Jsonl/Metrics: the streaming writer (to an in-memory sink) and the
//    mutex-guarded collector.
//  * *TelemetryOff/*TelemetryOn: the runtime telemetry probes
//    (src/telemetry) with no collector attached (the one-branch fast path
//    — the <=2% acceptance bar of the telemetry subsystem, gated against
//    the committed baseline by run_benches.sh --compare) and with a
//    RunTelemetryCollector attached (what `trace_run --profile` pays).

#include <benchmark/benchmark.h>

#include <sstream>

#include "bench_util.h"
#include "core/batch_simulator.h"
#include "core/observer.h"
#include "core/simulator.h"
#include "observe/jsonl_writer.h"
#include "observe/metrics.h"
#include "observe/trace_recorder.h"
#include "protocols/counting.h"
#include "telemetry/telemetry.h"

namespace {

using namespace popproto;

// The bench_throughput head-to-head workload: count-to-five, "dense" for
// the agent-array loop (effective fraction near 1/4) and "sparse" (7 ones,
// null-dominated) for the batch engine, where the snapshot clamping logic
// actually cuts geometric jumps.
constexpr std::uint64_t kAgentBudget = 1'000'000;
constexpr std::uint64_t kBatchBudget = 4'000'000;

RunOptions agent_options(std::uint64_t seed) {
    RunOptions options;
    options.max_interactions = kAgentBudget;
    options.seed = seed;
    return options;
}

RunOptions batch_options(std::uint64_t seed) {
    RunOptions options;
    options.max_interactions = kBatchBudget;
    options.seed = seed;
    return options;
}

void report_rate(benchmark::State& state, std::uint64_t interactions) {
    state.counters["interactions/s"] = benchmark::Counter(
        static_cast<double>(interactions), benchmark::Counter::kIsRate);
}

template <typename Runner>
void run_agent_array(benchmark::State& state, Runner&& with_options) {
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n / 2, n - n / 2});
    std::uint64_t seed = 1;
    std::uint64_t interactions = 0;
    for (auto _ : state) {
        RunOptions options = agent_options(++seed);
        with_options(options);
        const RunResult result = simulate(*protocol, initial, options);
        interactions += result.interactions;
        benchmark::DoNotOptimize(result.interactions);
    }
    report_rate(state, interactions);
}

template <typename Runner>
void run_batch(benchmark::State& state, Runner&& with_options) {
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n - 7, 7});
    std::uint64_t seed = 1;
    std::uint64_t interactions = 0;
    for (auto _ : state) {
        RunOptions options = batch_options(++seed);
        with_options(options);
        const RunResult result = simulate_counts(*protocol, initial, options);
        interactions += result.interactions;
        benchmark::DoNotOptimize(result.interactions);
    }
    report_rate(state, interactions);
}

// --- Agent-array engine --------------------------------------------------

void BM_AgentArrayUnobserved(benchmark::State& state) {
    run_agent_array(state, [](RunOptions&) {});
}
BENCHMARK(BM_AgentArrayUnobserved)->Arg(256)->Arg(4096);

void BM_AgentArrayNoopObserver(benchmark::State& state) {
    RunObserver noop;
    run_agent_array(state, [&](RunOptions& options) { options.observer = &noop; });
}
BENCHMARK(BM_AgentArrayNoopObserver)->Arg(256)->Arg(4096);

void BM_AgentArrayTraced(benchmark::State& state) {
    TraceRecorder recorder;
    run_agent_array(state, [&](RunOptions& options) {
        options.observer = &recorder;
        options.snapshots = SnapshotSchedule::every(4096);
    });
}
BENCHMARK(BM_AgentArrayTraced)->Arg(256)->Arg(4096);

// --- Count-batch engine --------------------------------------------------

void BM_BatchUnobserved(benchmark::State& state) {
    run_batch(state, [](RunOptions&) {});
}
BENCHMARK(BM_BatchUnobserved)->Arg(4096)->Arg(65536);

void BM_BatchNoopObserver(benchmark::State& state) {
    RunObserver noop;
    run_batch(state, [&](RunOptions& options) { options.observer = &noop; });
}
BENCHMARK(BM_BatchNoopObserver)->Arg(4096)->Arg(65536);

void BM_BatchTraced(benchmark::State& state) {
    TraceRecorder recorder;
    run_batch(state, [&](RunOptions& options) {
        options.observer = &recorder;
        options.snapshots = SnapshotSchedule::every(65536);
    });
}
BENCHMARK(BM_BatchTraced)->Arg(4096)->Arg(65536);

// --- Runtime telemetry (src/telemetry) -----------------------------------

void BM_AgentArrayTelemetryOff(benchmark::State& state) {
    // options.telemetry stays nullptr: this row prices the probe branches
    // themselves and must stay within noise of BM_AgentArrayUnobserved.
    run_agent_array(state, [](RunOptions& options) { options.telemetry = nullptr; });
}
BENCHMARK(BM_AgentArrayTelemetryOff)->Arg(4096);

void BM_AgentArrayTelemetryOn(benchmark::State& state) {
    telemetry::RunTelemetryCollector collector;
    run_agent_array(state, [&](RunOptions& options) { options.telemetry = &collector; });
}
BENCHMARK(BM_AgentArrayTelemetryOn)->Arg(4096);

void BM_BatchTelemetryOff(benchmark::State& state) {
    run_batch(state, [](RunOptions& options) { options.telemetry = nullptr; });
}
BENCHMARK(BM_BatchTelemetryOff)->Arg(65536);

void BM_BatchTelemetryOn(benchmark::State& state) {
    telemetry::RunTelemetryCollector collector;
    run_batch(state, [&](RunOptions& options) { options.telemetry = &collector; });
}
BENCHMARK(BM_BatchTelemetryOn)->Arg(65536);

void BM_BatchMetrics(benchmark::State& state) {
    MetricsCollector metrics;
    run_batch(state, [&](RunOptions& options) { options.observer = &metrics; });
}
BENCHMARK(BM_BatchMetrics)->Arg(4096);

void BM_BatchJsonl(benchmark::State& state) {
    // In-memory sink: measures event serialization, not disk throughput.
    const std::uint64_t n = 4096;
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n - 7, 7});
    std::uint64_t seed = 1;
    std::uint64_t interactions = 0;
    for (auto _ : state) {
        std::ostringstream sink;
        JsonlTraceWriter writer(sink);
        RunOptions options = batch_options(++seed);
        options.observer = &writer;
        options.snapshots = SnapshotSchedule::every(65536);
        const RunResult result = simulate_counts(*protocol, initial, options);
        interactions += result.interactions;
        benchmark::DoNotOptimize(sink.str().size());
    }
    report_rate(state, interactions);
}
BENCHMARK(BM_BatchJsonl);

}  // namespace

POPPROTO_BENCHMARK_MAIN()
